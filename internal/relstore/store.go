package relstore

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"gallery/internal/btree"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/wal"
)

// Sentinel errors for callers that branch on failure modes.
var (
	ErrNoTable   = errors.New("relstore: no such table")
	ErrDuplicate = errors.New("relstore: duplicate primary key")
	ErrNotFound  = errors.New("relstore: row not found")
)

// Store is an embedded relational store. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table
	log    *wal.Log // nil for volatile stores

	obs        *obs.Registry
	walSeconds *obs.Histogram
	opMu       sync.RWMutex
	opCounters map[opKey]*obs.Counter // handle cache: countOp is on every hot path
}

// opKey keys the per-(op, table) counter-handle cache.
type opKey struct{ op, table string }

// Instrument redirects the store's metrics to reg (default obs.Default).
// Call before serving traffic.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = reg
	s.walSeconds = reg.Histogram("relstore_wal_append_seconds", obs.LatencyBuckets)
	s.opMu.Lock()
	s.opCounters = make(map[opKey]*obs.Counter)
	s.opMu.Unlock()
}

// countOp bumps the per-table operation counter, e.g.
// relstore_ops_total{op="insert",table="instances"}. Handles are cached
// per (op, table) so the hot path is one read-locked map hit and an
// atomic increment — no name formatting or registry traffic.
func (s *Store) countOp(op, tableName string) {
	k := opKey{op, tableName}
	s.opMu.RLock()
	c, ok := s.opCounters[k]
	s.opMu.RUnlock()
	if !ok {
		c = s.obs.Counter(obs.Name("relstore_ops_total", "op", op, "table", tableName))
		s.opMu.Lock()
		s.opCounters[k] = c
		s.opMu.Unlock()
	}
	c.Inc()
}

type table struct {
	schema  Schema
	rows    map[string]Row
	pks     *btree.Tree            // ordered primary keys for stable scans
	indexes map[string]*btree.Tree // secondary indexes by column
}

// pkItem orders primary keys in the pks tree.
type pkItem string

func (p pkItem) Less(than btree.Item) bool { return p < than.(pkItem) }

// indexEntry is one secondary-index posting: a column value plus the owning
// row's primary key, ordered by (value, pk). Stored postings never set
// max; it is a seek sentinel that sorts after every real posting with the
// same value (primary keys are non-empty, so {v, pk: ""} is likewise a
// sentinel before them). The planner uses both to jump over equal-value
// runs in O(log n) instead of filtering through them.
type indexEntry struct {
	v   Value
	pk  string
	max bool
}

func (e indexEntry) Less(than btree.Item) bool {
	o := than.(indexEntry)
	if c := Compare(e.v, o.v); c != 0 {
		return c < 0
	}
	if e.max != o.max {
		return o.max
	}
	return e.pk < o.pk
}

// NewMemory returns a volatile in-memory store.
func NewMemory() *Store {
	s := &Store{tables: make(map[string]*table)}
	s.Instrument(nil)
	return s
}

// Open returns a durable store backed by a write-ahead log at path. Existing
// state is replayed; a torn tail from a crash is truncated.
func Open(path string, opts wal.Options) (*Store, error) {
	s := &Store{tables: make(map[string]*table)}
	s.Instrument(nil)
	l, err := wal.Open(path, opts, func(payload []byte) error {
		var op walOp
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
			return fmt.Errorf("relstore: decode wal record: %w", err)
		}
		return s.apply(op)
	})
	if err != nil {
		return nil, err
	}
	s.log = l
	return s, nil
}

// Close releases the write-ahead log, if any.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// walOp is the durable form of every mutation.
type walOp struct {
	Kind   opKind
	Schema *Schema // CreateTable
	Table  string
	Row    Row    // Insert/Update
	PK     string // Delete
	Batch  []walOp
}

type opKind uint8

const (
	opCreateTable opKind = iota + 1
	opInsert
	opUpdate
	opDelete
	opBatch
)

// logOp persists op if the store is durable.
func (s *Store) logOp(op walOp) error { return s.logOpCtx(context.Background(), op) }

// logOpCtx is logOp with trace attribution: the WAL append — the only
// disk wait on the mutation path — gets its own child span, and the
// append-latency histogram an exemplar pointing back at the trace.
func (s *Store) logOpCtx(ctx context.Context, op walOp) error {
	if s.log == nil {
		return nil
	}
	_, span := trace.Start(ctx, "relstore.wal_append")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		span.EndErr(err)
		return fmt.Errorf("relstore: encode wal record: %w", err)
	}
	start := time.Now()
	err := s.log.Append(buf.Bytes())
	s.walSeconds.ObserveSinceExemplar(start, span.TraceIDString())
	if span != nil {
		span.AnnotateInt("bytes", int64(buf.Len()))
	}
	span.EndErr(err)
	return err
}

// apply performs op against in-memory state. Callers hold the write lock
// (or, during recovery, have exclusive access).
func (s *Store) apply(op walOp) error {
	switch op.Kind {
	case opCreateTable:
		return s.applyCreateTable(*op.Schema)
	case opInsert:
		return s.applyInsert(op.Table, op.Row)
	case opUpdate:
		return s.applyUpdate(op.Table, op.Row)
	case opDelete:
		return s.applyDelete(op.Table, op.PK)
	case opBatch:
		for _, sub := range op.Batch {
			if err := s.apply(sub); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("relstore: unknown wal op %d", op.Kind)
	}
}

// CreateTable declares a new table. Creating a table that already exists
// with an identical schema is a no-op, so callers can declare schemas
// unconditionally at startup over a recovered store.
func (s *Store) CreateTable(schema Schema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.tables[schema.Table]; ok {
		if schemaEqual(existing.schema, schema) {
			return nil
		}
		return fmt.Errorf("relstore: table %s already exists with a different schema", schema.Table)
	}
	if err := s.applyCreateTable(schema); err != nil {
		return err
	}
	return s.logOp(walOp{Kind: opCreateTable, Schema: &schema})
}

func schemaEqual(a, b Schema) bool {
	if a.Table != b.Table || a.Key != b.Key ||
		len(a.Columns) != len(b.Columns) || len(a.Indexes) != len(b.Indexes) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Indexes {
		if a.Indexes[i] != b.Indexes[i] {
			return false
		}
	}
	return true
}

func (s *Store) applyCreateTable(schema Schema) error {
	if existing, ok := s.tables[schema.Table]; ok {
		// During WAL replay an identical create is idempotent.
		if schemaEqual(existing.schema, schema) {
			return nil
		}
		return fmt.Errorf("relstore: table %s already exists", schema.Table)
	}
	t := &table{
		schema:  schema,
		rows:    make(map[string]Row),
		pks:     btree.New(),
		indexes: make(map[string]*btree.Tree, len(schema.Indexes)),
	}
	for _, idx := range schema.Indexes {
		t.indexes[idx] = btree.New()
	}
	s.tables[schema.Table] = t
	return nil
}

// Insert adds a new row. Gallery data is immutable, so inserting an existing
// primary key fails with ErrDuplicate rather than overwriting.
func (s *Store) Insert(tableName string, row Row) error {
	return s.InsertCtx(context.Background(), tableName, row)
}

// InsertCtx is Insert with trace attribution: a per-table op span plus a
// WAL-append child when the store is durable.
func (s *Store) InsertCtx(ctx context.Context, tableName string, row Row) error {
	ctx, span := trace.Start(ctx, "relstore.insert")
	if span != nil {
		span.Annotate("table", tableName)
	}
	err := s.insertCtx(ctx, tableName, row)
	span.EndErr(err)
	return err
}

func (s *Store) insertCtx(ctx context.Context, tableName string, row Row) error {
	s.countOp("insert", tableName)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyInsert(tableName, row); err != nil {
		return err
	}
	return s.logOpCtx(ctx, walOp{Kind: opInsert, Table: tableName, Row: row})
}

func (s *Store) applyInsert(tableName string, row Row) error {
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	pk, err := t.schema.checkRow(row)
	if err != nil {
		return err
	}
	if _, exists := t.rows[pk]; exists {
		return fmt.Errorf("%w: %s[%s]", ErrDuplicate, tableName, pk)
	}
	t.put(pk, row.Clone())
	return nil
}

// Update replaces an existing row identified by its primary key. It fails
// with ErrNotFound for absent rows; Gallery uses updates only for mutable
// operational state such as deprecation flags and dependency pointers.
func (s *Store) Update(tableName string, row Row) error {
	return s.UpdateCtx(context.Background(), tableName, row)
}

// UpdateCtx is Update with trace attribution.
func (s *Store) UpdateCtx(ctx context.Context, tableName string, row Row) error {
	ctx, span := trace.Start(ctx, "relstore.update")
	if span != nil {
		span.Annotate("table", tableName)
	}
	err := s.updateCtx(ctx, tableName, row)
	span.EndErr(err)
	return err
}

func (s *Store) updateCtx(ctx context.Context, tableName string, row Row) error {
	s.countOp("update", tableName)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyUpdate(tableName, row); err != nil {
		return err
	}
	return s.logOpCtx(ctx, walOp{Kind: opUpdate, Table: tableName, Row: row})
}

func (s *Store) applyUpdate(tableName string, row Row) error {
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	pk, err := t.schema.checkRow(row)
	if err != nil {
		return err
	}
	old, exists := t.rows[pk]
	if !exists {
		return fmt.Errorf("%w: %s[%s]", ErrNotFound, tableName, pk)
	}
	t.unindex(pk, old)
	t.put(pk, row.Clone())
	return nil
}

// Delete removes a row by primary key. Deleting an absent row fails with
// ErrNotFound.
func (s *Store) Delete(tableName, pk string) error {
	return s.DeleteCtx(context.Background(), tableName, pk)
}

// DeleteCtx is Delete with trace attribution.
func (s *Store) DeleteCtx(ctx context.Context, tableName, pk string) error {
	ctx, span := trace.Start(ctx, "relstore.delete")
	if span != nil {
		span.Annotate("table", tableName)
	}
	err := s.deleteCtx(ctx, tableName, pk)
	span.EndErr(err)
	return err
}

func (s *Store) deleteCtx(ctx context.Context, tableName, pk string) error {
	s.countOp("delete", tableName)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyDelete(tableName, pk); err != nil {
		return err
	}
	return s.logOpCtx(ctx, walOp{Kind: opDelete, Table: tableName, PK: pk})
}

func (s *Store) applyDelete(tableName, pk string) error {
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	old, exists := t.rows[pk]
	if !exists {
		return fmt.Errorf("%w: %s[%s]", ErrNotFound, tableName, pk)
	}
	t.unindex(pk, old)
	delete(t.rows, pk)
	t.pks.Delete(pkItem(pk))
	return nil
}

// put installs row under pk and maintains all indexes. Caller has validated.
func (t *table) put(pk string, row Row) {
	t.rows[pk] = row
	t.pks.ReplaceOrInsert(pkItem(pk))
	for col, idx := range t.indexes {
		if v, ok := row[col]; ok && !v.IsNull() {
			idx.ReplaceOrInsert(indexEntry{v: v, pk: pk})
		}
	}
}

// unindex removes row's postings from all indexes.
func (t *table) unindex(pk string, row Row) {
	for col, idx := range t.indexes {
		if v, ok := row[col]; ok && !v.IsNull() {
			idx.Delete(indexEntry{v: v, pk: pk})
		}
	}
}

// Mutation is one element of an atomic Batch.
type Mutation struct {
	Kind  MutationKind
	Table string
	Row   Row    // Insert/Update
	PK    string // Delete
}

// MutationKind selects the operation a Mutation performs.
type MutationKind uint8

// Batch mutation kinds.
const (
	MutInsert MutationKind = iota + 1
	MutUpdate
	MutDelete
)

// Batch applies mutations atomically: either all succeed or none are
// applied. It is Gallery's tool for multi-row invariants, e.g. writing a new
// model-instance version together with the dependency-graph rows it bumps
// (paper Figures 6–7).
func (s *Store) Batch(muts []Mutation) error {
	return s.BatchCtx(context.Background(), muts)
}

// BatchCtx is Batch with trace attribution: one span covering the whole
// atomic group (annotated with its size) plus the WAL-append child.
func (s *Store) BatchCtx(ctx context.Context, muts []Mutation) error {
	ctx, span := trace.Start(ctx, "relstore.batch")
	if span != nil {
		span.AnnotateInt("mutations", int64(len(muts)))
	}
	err := s.batchCtx(ctx, muts)
	span.EndErr(err)
	return err
}

func (s *Store) batchCtx(ctx context.Context, muts []Mutation) error {
	for _, m := range muts {
		switch m.Kind {
		case MutInsert:
			s.countOp("insert", m.Table)
		case MutUpdate:
			s.countOp("update", m.Table)
		case MutDelete:
			s.countOp("delete", m.Table)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate every mutation against current state plus the batch's own
	// earlier effects, without mutating, by simulating key presence.
	if err := s.validateBatch(muts); err != nil {
		return err
	}
	ops := make([]walOp, len(muts))
	for i, m := range muts {
		switch m.Kind {
		case MutInsert:
			ops[i] = walOp{Kind: opInsert, Table: m.Table, Row: m.Row}
		case MutUpdate:
			ops[i] = walOp{Kind: opUpdate, Table: m.Table, Row: m.Row}
		case MutDelete:
			ops[i] = walOp{Kind: opDelete, Table: m.Table, PK: m.PK}
		}
	}
	for _, op := range ops {
		if err := s.apply(op); err != nil {
			// validateBatch guarantees this cannot happen; if it does, state
			// may be partially applied and the only safe move is to surface it.
			return fmt.Errorf("relstore: batch apply after validation: %w", err)
		}
	}
	return s.logOpCtx(ctx, walOp{Kind: opBatch, Batch: ops})
}

// validateBatch checks all mutations, tracking the batch's own inserts and
// deletes so later mutations see earlier ones.
func (s *Store) validateBatch(muts []Mutation) error {
	type key struct{ table, pk string }
	// present overlays key existence changes made by the batch itself.
	present := make(map[key]bool)
	exists := func(t *table, tableName, pk string) bool {
		if v, ok := present[key{tableName, pk}]; ok {
			return v
		}
		_, ok := t.rows[pk]
		return ok
	}
	for i, m := range muts {
		t, ok := s.tables[m.Table]
		if !ok {
			return fmt.Errorf("%w: %s (batch element %d)", ErrNoTable, m.Table, i)
		}
		switch m.Kind {
		case MutInsert:
			pk, err := t.schema.checkRow(m.Row)
			if err != nil {
				return fmt.Errorf("batch element %d: %w", i, err)
			}
			if exists(t, m.Table, pk) {
				return fmt.Errorf("%w: %s[%s] (batch element %d)", ErrDuplicate, m.Table, pk, i)
			}
			present[key{m.Table, pk}] = true
		case MutUpdate:
			pk, err := t.schema.checkRow(m.Row)
			if err != nil {
				return fmt.Errorf("batch element %d: %w", i, err)
			}
			if !exists(t, m.Table, pk) {
				return fmt.Errorf("%w: %s[%s] (batch element %d)", ErrNotFound, m.Table, pk, i)
			}
		case MutDelete:
			if !exists(t, m.Table, m.PK) {
				return fmt.Errorf("%w: %s[%s] (batch element %d)", ErrNotFound, m.Table, m.PK, i)
			}
			present[key{m.Table, m.PK}] = false
		default:
			return fmt.Errorf("relstore: batch element %d has unknown kind %d", i, m.Kind)
		}
	}
	return nil
}

// Get fetches a row copy by primary key.
func (s *Store) Get(tableName, pk string) (Row, error) {
	return s.GetCtx(context.Background(), tableName, pk)
}

// GetCtx is Get with trace attribution (a per-table read span when the
// request is sampled; one nil check otherwise).
func (s *Store) GetCtx(ctx context.Context, tableName, pk string) (Row, error) {
	_, span := trace.Start(ctx, "relstore.get")
	if span != nil {
		span.Annotate("table", tableName)
	}
	row, err := s.get(tableName, pk)
	span.EndErr(err)
	return row, err
}

func (s *Store) get(tableName, pk string) (Row, error) {
	s.countOp("get", tableName)
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s[%s]", ErrNotFound, tableName, pk)
	}
	return row.Clone(), nil
}

// Len returns the number of rows in a table.
func (s *Store) Len(tableName string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}

// Tables lists the names of all tables.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	return names
}
