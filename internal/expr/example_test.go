package expr_test

import (
	"fmt"
	"log"

	"gallery/internal/expr"
)

// Example evaluates a rule condition like the paper's Listing 2 against a
// model instance's environment.
func Example() {
	env := &expr.Env{Vars: map[string]any{
		"model_domain": "UberX",
		"metrics": map[string]any{
			"bias": 0.05,
			"mape": 7.2,
		},
	}}
	ok, err := expr.EvalBool(
		`model_domain in ["UberX", "UberPool"] && metrics.bias <= 0.1 && metrics.bias >= -0.1`, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deploy:", ok)
	// Output: deploy: true
}
