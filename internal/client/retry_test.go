package client

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gallery/internal/api"
)

// flakyHandler fails the first failN requests with status, then serves v.
func flakyHandler(failN int, status int, v string) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failN) {
			http.Error(w, `{"error":"transient"}`, status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(v))
	})
	return h, &calls
}

// noSleep records requested backoffs without waiting them out.
func noSleep(dst *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *dst = append(*dst, d) }
}

func TestRetryGETOn5xx(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusInternalServerError, `{"models":1,"instances":2,"metrics":3}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{Retries: 3, Sleep: noSleep(&slept)})
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after transient 500s: %v", err)
	}
	if st.Models != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusBadGateway, `{}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{Retries: 2, Sleep: noSleep(&slept)})
	_, err := c.Stats()
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestNoRetryPOSTOn5xx(t *testing.T) {
	// A POST reaching the server must never be resent: it could have
	// been applied before the 5xx.
	h, calls := flakyHandler(100, http.StatusInternalServerError, `{}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{Retries: 3, Sleep: noSleep(&slept)})
	_, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv"})
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d POSTs, want exactly 1", got)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v before a non-retryable failure", slept)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusNotFound, `{}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewWith(ts.URL, Options{Retries: 3, Sleep: func(time.Duration) {}})
	_, err := c.Stats()
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (4xx is deterministic)", got)
	}
}

func TestRetryDialErrorForPOST(t *testing.T) {
	// Nothing listens on the target, so the dial itself fails — the
	// request was never sent, making retry safe for any method. Grab a
	// port that is actually closed by opening and closing a listener.
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close()

	var slept []time.Duration
	c := NewWith(dead, Options{Retries: 2, Sleep: noSleep(&slept)})
	_, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv"})
	if err == nil {
		t.Fatal("want error against a dead server")
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (dial errors retry even for POST)", len(slept))
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := NewWith("http://x", Options{RetryBase: 100 * time.Millisecond, RetryMax: 400 * time.Millisecond})
	for attempt, want := range []time.Duration{
		100 * time.Millisecond, // 1st retry: base
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	} {
		for i := 0; i < 50; i++ { // jitter is random; probe repeatedly
			d := c.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
