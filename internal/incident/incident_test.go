package incident

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/dal"
	"gallery/internal/obs"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
	"gallery/internal/wal"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// harness builds a recorder over in-memory stores with a mock clock.
func harness(t *testing.T, cfg Config) (*Recorder, *clock.Mock, *obs.Registry) {
	t.Helper()
	clk := clock.NewMock(t0)
	o := obs.NewRegistry()
	d := dal.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), dal.Options{Obs: o})
	cfg.Obs = o
	cfg.Clock = clk
	cfg.UUIDs = uuid.NewSeeded(7)
	r, err := Open(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, clk, o
}

func TestTriggerCapturesAndGets(t *testing.T) {
	ring := obslog.NewRing(64)
	logger := slog.New(obslog.NewHandler(ring, slog.LevelInfo, nil))
	logger.Info("something happened", "model", "eta")

	tracer := trace.New(trace.Options{Service: "test", Sampler: trace.Always()})
	_, span := trace.Start(context.Background(), "warmup")
	span.End()

	r, _, o := harness(t, Config{Tracer: tracer, Logs: ring, Service: "galleryd-test"})
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "manual", Namespace: "maps", Reason: "drill"})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Trigger != "manual" || inc.Scope != "maps" || inc.Size <= 0 {
		t.Fatalf("unexpected incident meta: %+v", inc)
	}
	got, bundle, err := r.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != inc.ID || got.Created != inc.Created {
		t.Fatalf("Get meta mismatch: %+v vs %+v", got, inc)
	}
	reg := bundle.Registry
	if reg.Service != "galleryd-test" {
		t.Fatalf("snapshot service = %q", reg.Service)
	}
	if len(reg.Metrics) == 0 || reg.MetricsProm == "" {
		t.Fatal("metrics sections empty")
	}
	if len(reg.Traces) == 0 {
		t.Fatal("trace section empty")
	}
	if len(reg.Logs) == 0 || reg.Logs[0].Msg != "something happened" {
		t.Fatalf("log tail wrong: %+v", reg.Logs)
	}
	if reg.GoroutineProfile == "" || !strings.Contains(reg.GoroutineProfile, "goroutine") {
		t.Fatal("goroutine profile missing")
	}
	if reg.Build.GoVersion == "" || reg.Build.Version == "" {
		t.Fatalf("build info not stamped: %+v", reg.Build)
	}
	if v := o.Counter("incident_captures_total").Value(); v != 1 {
		t.Fatalf("captures counter = %v", v)
	}
}

func TestDebouncePerScope(t *testing.T) {
	r, clk, o := harness(t, Config{Debounce: 5 * time.Minute})
	ctx := context.Background()
	if _, err := r.Trigger(ctx, Trigger{Kind: "slo.burn", ModelID: "m1"}); err != nil {
		t.Fatal(err)
	}
	// Same scope inside the window: suppressed, regardless of trigger kind.
	for i := 0; i < 5; i++ {
		_, err := r.Trigger(ctx, Trigger{Kind: "rule", ModelID: "m1"})
		if !errors.Is(err, ErrSuppressed) {
			t.Fatalf("trigger %d: err = %v, want ErrSuppressed", i, err)
		}
	}
	// A different scope is its own bucket.
	if _, err := r.Trigger(ctx, Trigger{Kind: "slo.burn", Namespace: "maps"}); err != nil {
		t.Fatal(err)
	}
	// Past the window the scope re-arms.
	clk.Advance(5 * time.Minute)
	if _, err := r.Trigger(ctx, Trigger{Kind: "slo.burn", ModelID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if v := o.Counter("incident_captures_total").Value(); v != 3 {
		t.Fatalf("captures = %v, want 3", v)
	}
	if v := o.Counter("incident_suppressed_total").Value(); v != 5 {
		t.Fatalf("suppressed = %v, want 5", v)
	}
	incs, err := r.List("")
	if err != nil || len(incs) != 3 {
		t.Fatalf("List = %d incidents (%v), want 3", len(incs), err)
	}
}

func TestRetentionPrunes(t *testing.T) {
	r, clk, _ := harness(t, Config{Keep: 2, Debounce: -1})
	ctx := context.Background()
	var ids []string
	for _, scope := range []string{"a", "b", "c", "d"} {
		inc, err := r.Trigger(ctx, Trigger{Kind: "manual", Namespace: scope})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, inc.ID)
		clk.Advance(time.Minute)
	}
	incs, err := r.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 {
		t.Fatalf("retained %d incidents, want 2", len(incs))
	}
	// Newest first; the two oldest (a, b) are gone — row and blob.
	if incs[0].ID != ids[3] || incs[1].ID != ids[2] {
		t.Fatalf("retained wrong incidents: %+v", incs)
	}
	if _, _, err := r.Get(ctx, ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pruned Get err = %v, want ErrNotFound", err)
	}
}

func TestNamespaceScopedList(t *testing.T) {
	r, clk, _ := harness(t, Config{Debounce: -1})
	ctx := context.Background()
	for _, ns := range []string{"maps", "fraud", "maps"} {
		if _, err := r.Trigger(ctx, Trigger{Kind: "manual", Namespace: ns, ModelID: ns + "-m" + clk.Now().Format("05")}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	maps, err := r.List("maps")
	if err != nil || len(maps) != 2 {
		t.Fatalf("List(maps) = %d (%v), want 2", len(maps), err)
	}
	all, err := r.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List() = %d (%v), want 3", len(all), err)
	}
}

func TestGatewayPullAndPartialMarking(t *testing.T) {
	// A live gateway: the bundle embeds its snapshot.
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/v1/debug/bundle" {
			http.NotFound(w, req)
			return
		}
		if got := req.Header.Get("Authorization"); got != "Bearer sesame" {
			t.Errorf("gateway saw Authorization %q", got)
		}
		_ = json.NewEncoder(w).Encode(api.ProcessSnapshot{Service: "galleryserve", MetricsProm: "# up 1\n"})
	}))
	r, _, _ := harness(t, Config{Gateway: gw.URL, GatewayToken: "sesame", Debounce: -1})
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "manual", Namespace: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Partial {
		t.Fatal("live gateway marked partial")
	}
	_, bundle, err := r.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Gateway == nil || bundle.Gateway.Service != "galleryserve" {
		t.Fatalf("gateway snapshot missing: %+v", bundle.Gateway)
	}

	// Kill the gateway: the capture still lands, marked partial.
	gw.Close()
	inc2, err := r.Trigger(context.Background(), Trigger{Kind: "manual", Namespace: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !inc2.Partial {
		t.Fatal("dead gateway not marked partial")
	}
	_, bundle2, err := r.Get(context.Background(), inc2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bundle2.Gateway != nil || bundle2.GatewayError == "" {
		t.Fatalf("partial bundle shape wrong: gw=%v err=%q", bundle2.Gateway, bundle2.GatewayError)
	}
}

func TestBundleSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "meta.wal")
	open := func() (*dal.DAL, func()) {
		meta, err := relstore.Open(walPath, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		blobs, err := blobstore.NewDisk(filepath.Join(dir, "blobs"), blobstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return dal.New(meta, blobs, dal.Options{Obs: obs.NewRegistry()}), func() { meta.Close() }
	}

	d, cleanup := open()
	r, err := Open(d, Config{Obs: obs.NewRegistry(), Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(9)})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "manual", Namespace: "maps", Reason: "pre-restart"})
	if err != nil {
		t.Fatal(err)
	}
	cleanup()

	// "Restart": fresh stores replay the WAL; the bundle must be listable
	// and fetchable with its sections intact.
	d2, cleanup2 := open()
	defer cleanup2()
	r2, err := Open(d2, Config{Obs: obs.NewRegistry(), Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(10)})
	if err != nil {
		t.Fatal(err)
	}
	incs, err := r2.List("")
	if err != nil || len(incs) != 1 || incs[0].ID != inc.ID {
		t.Fatalf("post-restart List = %+v (%v)", incs, err)
	}
	got, bundle, err := r2.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "pre-restart" || len(bundle.Registry.Metrics) == 0 {
		t.Fatalf("post-restart bundle degraded: %+v", got)
	}
}

func TestScopeSelection(t *testing.T) {
	cases := []struct {
		tr   Trigger
		want string
	}{
		{Trigger{ModelID: "m", Namespace: "ns"}, "m"},
		{Trigger{Namespace: "ns"}, "ns"},
		{Trigger{}, "process"},
	}
	for _, c := range cases {
		if got := c.tr.Scope(); got != c.want {
			t.Errorf("Scope(%+v) = %q, want %q", c.tr, got, c.want)
		}
	}
}

func TestAuditTailScoping(t *testing.T) {
	store := relstore.NewMemory()
	log, err := audit.Open(store, audit.Options{Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(11), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := audit.WithActor(context.Background(), "test")
	if err := log.Record(ctx, audit.Event{Action: "model.promote", EntityType: audit.EntityModel, EntityID: "m1", ModelID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := log.Record(ctx, audit.Event{Action: "model.promote", EntityType: audit.EntityModel, EntityID: "m2", ModelID: "m2"}); err != nil {
		t.Fatal(err)
	}

	clk := clock.NewMock(t0)
	o := obs.NewRegistry()
	d := dal.New(store, blobstore.NewMemory(blobstore.Options{}), dal.Options{Obs: o})
	r, err := Open(d, Config{Obs: o, Audit: log, Clock: clk, UUIDs: uuid.NewSeeded(12), Debounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "manual", ModelID: "m1"})
	if err != nil {
		t.Fatal(err)
	}
	_, bundle, err := r.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Audit) != 1 || bundle.Audit[0].ModelID != "m1" {
		t.Fatalf("audit tail not scoped to model: %+v", bundle.Audit)
	}
}

func TestBundleEmbedsProfileHistory(t *testing.T) {
	// Hand-feed a profiler ring two windows so the capture has
	// pre-trigger evidence to embed, then restart the stores: the
	// history must ride the bundle blob through the WAL replay.
	ring := profile.NewRing(8)
	ring.Add(profile.Summary{
		Kind: profile.KindCPU, Unit: "nanoseconds", Total: 1000, Samples: 10,
		Start: t0.Add(-time.Minute), End: t0.Add(-50 * time.Second),
		Top: []profile.FuncStat{{Name: "gallery/internal/forecast.hot", Self: 900, SelfShare: 0.9}},
	})
	ring.Add(profile.Summary{
		Kind: profile.KindHeap, Unit: "bytes", Total: 1 << 20,
		Start: t0.Add(-30 * time.Second), End: t0.Add(-30 * time.Second),
	})

	dir := t.TempDir()
	walPath := filepath.Join(dir, "meta.wal")
	open := func() (*dal.DAL, func()) {
		meta, err := relstore.Open(walPath, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		blobs, err := blobstore.NewDisk(filepath.Join(dir, "blobs"), blobstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return dal.New(meta, blobs, dal.Options{Obs: obs.NewRegistry()}), func() { meta.Close() }
	}

	d, cleanup := open()
	r, err := Open(d, Config{Obs: obs.NewRegistry(), Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(13), Profiles: ring})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "rule", Namespace: "maps", Reason: "cpu regression"})
	if err != nil {
		t.Fatal(err)
	}
	_, bundle, err := r.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Registry.Profiles) != 2 {
		t.Fatalf("bundle profiles = %d summaries, want 2", len(bundle.Registry.Profiles))
	}
	// Newest first: the heap snapshot was added last.
	if bundle.Registry.Profiles[0].Kind != profile.KindHeap || bundle.Registry.Profiles[1].Kind != profile.KindCPU {
		t.Fatalf("profile history order wrong: %+v", bundle.Registry.Profiles)
	}
	if top := bundle.Registry.Profiles[1].Top; len(top) != 1 || top[0].Name != "gallery/internal/forecast.hot" {
		t.Fatalf("cpu top functions lost in capture: %+v", top)
	}
	cleanup()

	d2, cleanup2 := open()
	defer cleanup2()
	r2, err := Open(d2, Config{Obs: obs.NewRegistry(), Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(14)})
	if err != nil {
		t.Fatal(err)
	}
	_, bundle2, err := r2.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle2.Registry.Profiles) != 2 || bundle2.Registry.Profiles[1].Total != 1000 {
		t.Fatalf("post-restart profile history degraded: %+v", bundle2.Registry.Profiles)
	}
}

func TestProfileTailBounded(t *testing.T) {
	ring := profile.NewRing(64)
	for i := 0; i < 40; i++ {
		ring.Add(profile.Summary{Kind: profile.KindCPU, Total: int64(i), End: t0.Add(time.Duration(i) * time.Second)})
	}
	r, _, _ := harness(t, Config{Profiles: ring, ProfileTail: 4})
	inc, err := r.Trigger(context.Background(), Trigger{Kind: "manual", Namespace: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	_, bundle, err := r.Get(context.Background(), inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Registry.Profiles) != 4 {
		t.Fatalf("profile tail = %d, want 4 (ProfileTail bound ignored)", len(bundle.Registry.Profiles))
	}
	if bundle.Registry.Profiles[0].Total != 39 {
		t.Fatalf("tail not newest-first: %+v", bundle.Registry.Profiles[0])
	}
}
