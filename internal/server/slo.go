package server

import (
	"net/http"

	"gallery/internal/api"
	"gallery/internal/slo"
)

// SLO objective endpoints. Writes are operator-class under auth (see
// tenant.Classify) and additionally namespace-scoped: an objective is
// tenant state, so operators may only declare or delete objectives in
// their own namespace (default-namespace operators, as instance admins,
// may target any) — the same split the /v1/tenants handlers enforce.
// Reads are reader-class like every other GET.

func (s *Server) sloRoutes() {
	s.handle("POST /v1/slo", s.handleCreateSLO)
	s.handle("GET /v1/slo", s.handleListSLOs)
	s.handle("DELETE /v1/slo/{id}", s.handleDeleteSLO)
	s.handle("GET /v1/slo/status", s.handleSLOStatus)
}

// authorizeSLOWrite enforces namespace ownership of an SLO mutation.
// No-op with auth off, like the model/instance ownership helpers.
func (s *Server) authorizeSLOWrite(r *http.Request, targetNS string) error {
	if s.tenants == nil {
		return nil
	}
	_, err := s.admin(r, targetNS)
	return err
}

func (s *Server) handleCreateSLO(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSLORequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	// An empty namespace passes the scope check but is rejected by
	// Create's validation below, so nothing unowned slips through.
	if err := s.authorizeSLOWrite(r, req.Namespace); err != nil {
		writeErr(w, err)
		return
	}
	o, err := s.slo.Create(r.Context(), slo.Objective{
		Namespace:        req.Namespace,
		ModelID:          req.ModelID,
		Kind:             slo.Kind(req.Kind),
		Target:           req.Target,
		LatencyThreshold: req.LatencyThresholdMS / 1000,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sloToAPI(o))
}

func (s *Server) handleListSLOs(w http.ResponseWriter, r *http.Request) {
	objs := s.slo.List()
	out := api.SLOList{SLOs: make([]api.SLO, 0, len(objs))}
	for _, o := range objs {
		out.SLOs = append(out.SLOs, sloToAPI(o))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteSLO(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.tenants != nil {
		// Resolve the objective to find whose namespace it belongs to
		// before authorizing: deleting another tenant's objective would
		// silence their alerts.
		o, err := s.slo.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := s.authorizeSLOWrite(r, o.Namespace); err != nil {
			writeErr(w, err)
			return
		}
	}
	if err := s.slo.Delete(r.Context(), id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleSLOStatus(w http.ResponseWriter, r *http.Request) {
	sts := s.slo.Statuses()
	out := api.SLOStatusList{Statuses: make([]api.SLOStatus, 0, len(sts))}
	for _, st := range sts {
		out.Statuses = append(out.Statuses, api.SLOStatus{
			SLO:             sloToAPI(st.Objective),
			Breached:        st.Breached,
			Severity:        st.Severity,
			BurnFast:        st.BurnFast,
			BurnSlow:        st.BurnSlow,
			BudgetRemaining: st.BudgetRemaining,
			NoData:          st.NoData,
			LastChange:      st.LastChange,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func sloToAPI(o slo.Objective) api.SLO {
	return api.SLO{
		ID:                 o.ID,
		Namespace:          o.Namespace,
		ModelID:            o.ModelID,
		Kind:               string(o.Kind),
		Target:             o.Target,
		LatencyThresholdMS: o.LatencyThreshold * 1000,
		Created:            o.Created,
	}
}
