package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gallery/internal/uuid"
)

// The paper stores evaluation metrics as structured blobs "with the basic
// format of "<metric>:<value>" pairs" (§3.3.3). This file implements that
// textual format so framework-agnostic clients can ship their evaluation
// output verbatim; the registry flattens parsed pairs into queryable rows.

// ParseMetricsBlob decodes a "<metric>:<value>" blob. Pairs are separated
// by newlines or commas; blank entries and whitespace are tolerated.
func ParseMetricsBlob(blob []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	entries := strings.FieldsFunc(string(blob), func(r rune) bool {
		return r == '\n' || r == ','
	})
	for _, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		name, val, ok := strings.Cut(e, ":")
		if !ok {
			return nil, fmt.Errorf("%w: metrics blob entry %q is not <metric>:<value>", ErrBadSpec, e)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("%w: metrics blob entry %q has empty metric name", ErrBadSpec, e)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: metrics blob entry %q: %v", ErrBadSpec, e, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("%w: metrics blob repeats metric %q", ErrBadSpec, name)
		}
		out[name] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty metrics blob", ErrBadSpec)
	}
	return out, nil
}

// FormatMetricsBlob renders values in the blob format, sorted by name for
// stable output.
func FormatMetricsBlob(values map[string]float64) []byte {
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s:%s\n", n, strconv.FormatFloat(values[n], 'g', -1, 64))
	}
	return []byte(b.String())
}

// InsertMetricsBlob parses a "<metric>:<value>" blob and records every
// pair for the instance.
func (g *Registry) InsertMetricsBlob(instanceID uuid.UUID, scope Scope, blob []byte) error {
	values, err := ParseMetricsBlob(blob)
	if err != nil {
		return err
	}
	return g.InsertMetrics(instanceID, scope, values)
}
