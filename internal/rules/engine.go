package rules

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gallery/internal/audit"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/expr"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/uuid"
)

// Action is a framework-agnostic callback the engine invokes when an
// action rule fires (paper §3.7: "we expect users to define callback
// functions that will be triggered by the rule engine").
type Action func(ctx *ActionContext) error

// ActionContext carries everything a callback needs.
type ActionContext struct {
	// Ctx is the firing rule evaluation's context: it carries the trace
	// lineage of the triggering event and the audit actor, so callbacks
	// that mutate the registry should pass it to the *Ctx variants.
	Ctx      context.Context
	Rule     *Rule
	Instance *core.Instance
	Metrics  map[string]float64
	Params   map[string]any
	Time     time.Time
}

// Alert is a record produced by the built-in alert/email/log actions and
// by action failures. Experiments and operators read these.
type Alert struct {
	Time       time.Time
	RuleUUID   string
	InstanceID uuid.UUID
	Action     string
	Message    string
}

// Stats counts engine activity.
type Stats struct {
	Evaluations       int64 // rule condition evaluations
	Matches           int64 // conditions that held
	ActionsRun        int64
	ActionErrors      int64
	SelectionRequests int64
	EventsTriggered   int64
}

// Engine evaluates rules against the Gallery registry. Evaluation is event
// based (paper §3.7.2): direct selection requests and metric/metadata
// update events both flow through a job queue drained by worker
// goroutines; tests and callers that need determinism use Flush to wait
// for the queue to empty.
type Engine struct {
	reg  *core.Registry
	repo *Repo
	clk  clock.Clock

	// Environment scopes which rules apply (rules declare "production"
	// etc.; an empty rule environment matches everywhere).
	Environment string

	mu      sync.Mutex
	actions map[string]Action
	alerts  []Alert
	stats   Stats
	mx      engineMetrics

	jobs    chan job
	pending sync.WaitGroup
	started bool
}

// engineMetrics mirrors Stats into an obs registry so the rule engine
// shows up in /v1/debug/metrics alongside the storage layer.
type engineMetrics struct {
	evaluations  *obs.Counter
	matches      *obs.Counter
	actionsRun   *obs.Counter
	actionErrors *obs.Counter
	events       *obs.Counter
	selections   *obs.Counter
	alerts       *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return engineMetrics{
		evaluations:  reg.Counter("rules_evaluations_total"),
		matches:      reg.Counter("rules_matches_total"),
		actionsRun:   reg.Counter("rules_actions_run_total"),
		actionErrors: reg.Counter("rules_action_errors_total"),
		events:       reg.Counter("rules_events_triggered_total"),
		selections:   reg.Counter("rules_selection_requests_total"),
		alerts:       reg.Counter("rules_alerts_total"),
	}
}

// Instrument redirects the engine's metrics to reg (default obs.Default).
// Call before serving traffic.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mx = newEngineMetrics(reg)
}

type job struct {
	// ctx carries trace lineage from the triggering request; it is
	// detached (trace.Detach) so the rule run is not cancelled when the
	// HTTP request that inserted the metric returns.
	ctx        context.Context
	rule       *Rule
	instanceID uuid.UUID
	// extra adds event-specific variables to the evaluation environment
	// (e.g. the "health" payload of a drift event); nil for plain
	// metric/metadata triggers.
	extra map[string]any
}

// NewEngine assembles an engine. The built-in actions log, alert, and
// email are pre-registered; applications add their own (deployment,
// retraining, ...) with RegisterAction.
func NewEngine(reg *core.Registry, repo *Repo, clk clock.Clock) *Engine {
	if clk == nil {
		clk = clock.Real{}
	}
	e := &Engine{
		reg:         reg,
		repo:        repo,
		clk:         clk,
		Environment: "production",
		actions:     make(map[string]Action),
		mx:          newEngineMetrics(nil),
	}
	record := func(name string) Action {
		return func(ctx *ActionContext) error {
			e.recordAlert(Alert{
				Time:       ctx.Time,
				RuleUUID:   ctx.Rule.UUID,
				InstanceID: instanceIDOf(ctx),
				Action:     name,
				Message:    fmt.Sprintf("%v", ctx.Params["message"]),
			})
			return nil
		}
	}
	e.actions["log"] = record("log")
	e.actions["alert"] = record("alert")
	e.actions["email"] = record("email")
	return e
}

func instanceIDOf(ctx *ActionContext) uuid.UUID {
	if ctx.Instance == nil {
		return uuid.Nil
	}
	return ctx.Instance.ID
}

// RegisterAction installs (or replaces) a named callback.
func (e *Engine) RegisterAction(name string, a Action) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.actions[name] = a
}

// Start launches the worker pool that drains the evaluation job queue.
func (e *Engine) Start(workers int) {
	if workers <= 0 {
		workers = 4
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.jobs = make(chan job, 1024)
	jobs := e.jobs
	for i := 0; i < workers; i++ {
		go func() {
			for j := range jobs {
				e.runActionRule(j.ctx, j.rule, j.instanceID, j.extra)
				e.pending.Done()
			}
		}()
	}
}

// Stop drains outstanding jobs and stops the workers.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return
	}
	e.started = false
	jobs := e.jobs
	e.jobs = nil
	e.mu.Unlock()
	e.pending.Wait()
	close(jobs)
}

// Flush blocks until every queued job has been processed.
func (e *Engine) Flush() { e.pending.Wait() }

// --- event trigger (paper Fig. 8, Client 2) ---

// MetricUpdated notifies the engine that an instance gained a metric
// measurement. Every active action rule in scope that watches metrics is
// re-evaluated against that instance — asynchronously when the engine is
// started, inline otherwise.
func (e *Engine) MetricUpdated(instanceID uuid.UUID) {
	e.MetricUpdatedCtx(context.Background(), instanceID)
}

// MetricUpdatedCtx is MetricUpdated carrying the triggering request's
// trace lineage, so async rule evaluations show up as child spans of the
// metric insert that caused them.
func (e *Engine) MetricUpdatedCtx(ctx context.Context, instanceID uuid.UUID) {
	e.mu.Lock()
	e.stats.EventsTriggered++
	e.mu.Unlock()
	e.mx.events.Inc()
	for _, rule := range e.repo.Active() {
		if rule.Kind != KindAction || !e.inScope(rule) {
			continue
		}
		if !watches(rule, "metrics") {
			continue
		}
		e.dispatch(ctx, rule, instanceID, nil)
	}
}

// HealthEvent notifies the engine that the continuous health monitor
// raised an event ("drift" or "skew") for an instance. Action rules in
// scope that watch the "health" identifier re-evaluate with a health
// variable holding the event name and its numeric evidence, so a rule
// can say e.g.
//
//	when: 'health.event == "drift" && health.psi > 0.25'
//
// and close the paper's detect-drift → retrain loop automatically.
func (e *Engine) HealthEvent(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]float64) {
	e.mu.Lock()
	e.stats.EventsTriggered++
	e.mu.Unlock()
	e.mx.events.Inc()
	payload := make(map[string]any, len(fields)+1)
	payload["event"] = event
	for k, v := range fields {
		payload[k] = v
	}
	extra := map[string]any{"health": payload}
	for _, rule := range e.repo.Active() {
		if rule.Kind != KindAction || !e.inScope(rule) {
			continue
		}
		if !watches(rule, "health") {
			continue
		}
		e.dispatch(ctx, rule, instanceID, extra)
	}
}

// SLOEvent dispatches an SLO breach transition ("burn" / "recovered")
// from the SLO evaluator. fields carries the objective's identity and
// burn rates; rules address them as slo.event, slo.model, slo.burn_fast,
// and so on. Only model-scoped objectives reach here — the evaluator
// resolves the model to its production instance first, because action
// rules execute against an instance environment.
func (e *Engine) SLOEvent(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]any) {
	e.mu.Lock()
	e.stats.EventsTriggered++
	e.mu.Unlock()
	e.mx.events.Inc()
	payload := make(map[string]any, len(fields)+1)
	for k, v := range fields {
		payload[k] = v
	}
	payload["event"] = event
	extra := map[string]any{"slo": payload}
	for _, rule := range e.repo.Active() {
		if rule.Kind != KindAction || !e.inScope(rule) {
			continue
		}
		if !watches(rule, "slo") {
			continue
		}
		e.dispatch(ctx, rule, instanceID, extra)
	}
}

// ProfileEvent dispatches a continuous-profiling detection (currently
// only "regression") from the profile delta detector. Unlike health and
// SLO events it is a process-level signal — there is no instance behind
// a hot function — so rules evaluate with uuid.Nil and a minimal
// environment: profile.event, profile.process, profile.function,
// profile.share, profile.baseline, profile.factor, e.g.
//
//	when: 'profile.event == "regression" && profile.factor > 3'
func (e *Engine) ProfileEvent(ctx context.Context, event string, fields map[string]any) {
	e.mu.Lock()
	e.stats.EventsTriggered++
	e.mu.Unlock()
	e.mx.events.Inc()
	payload := make(map[string]any, len(fields)+1)
	for k, v := range fields {
		payload[k] = v
	}
	payload["event"] = event
	extra := map[string]any{"profile": payload}
	for _, rule := range e.repo.Active() {
		if rule.Kind != KindAction || !e.inScope(rule) {
			continue
		}
		if !watches(rule, "profile") {
			continue
		}
		e.dispatch(ctx, rule, uuid.Nil, extra)
	}
}

// MetadataUpdated notifies the engine that an instance's metadata changed;
// action rules watching any of the named fields re-evaluate.
func (e *Engine) MetadataUpdated(instanceID uuid.UUID, fields ...string) {
	e.MetadataUpdatedCtx(context.Background(), instanceID, fields...)
}

// MetadataUpdatedCtx is MetadataUpdated with trace lineage.
func (e *Engine) MetadataUpdatedCtx(ctx context.Context, instanceID uuid.UUID, fields ...string) {
	e.mu.Lock()
	e.stats.EventsTriggered++
	e.mu.Unlock()
	e.mx.events.Inc()
	for _, rule := range e.repo.Active() {
		if rule.Kind != KindAction || !e.inScope(rule) {
			continue
		}
		hit := false
		for _, f := range fields {
			if watches(rule, f) {
				hit = true
				break
			}
		}
		if hit {
			e.dispatch(ctx, rule, instanceID, nil)
		}
	}
}

func watches(rule *Rule, field string) bool {
	for _, id := range rule.WatchedIdents() {
		if id == field {
			return true
		}
	}
	return false
}

func (e *Engine) dispatch(ctx context.Context, rule *Rule, instanceID uuid.UUID, extra map[string]any) {
	e.mu.Lock()
	started, jobs := e.started, e.jobs
	if started {
		e.pending.Add(1)
	}
	e.mu.Unlock()
	if started {
		jobs <- job{ctx: trace.Detach(ctx), rule: rule, instanceID: instanceID, extra: extra}
		return
	}
	e.runActionRule(ctx, rule, instanceID, extra)
}

func (e *Engine) inScope(rule *Rule) bool {
	return rule.Environment == "" || rule.Environment == e.Environment
}

// runActionRule evaluates one action rule against one instance and fires
// its callbacks when the condition holds. Evaluation errors (e.g. a rule
// referencing a metric the instance has not reported) mean "condition not
// met", surfaced as a log alert rather than a crash.
func (e *Engine) runActionRule(ctx context.Context, rule *Rule, instanceID uuid.UUID, extra map[string]any) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := trace.Start(ctx, "rules.evaluate")
	if span != nil {
		span.Annotate("rule", rule.UUID)
		span.Annotate("instance", instanceID.String())
	}
	var (
		env *expr.Env
		in  *core.Instance
		err error
	)
	if instanceID == uuid.Nil {
		// Process-level events (profile regressions) have no instance;
		// give the rule an empty metrics map so metric references fail
		// soft the same way a missing metric does.
		env = &expr.Env{Vars: map[string]any{"metrics": map[string]any{}}}
	} else {
		env, in, err = e.instanceEnv(ctx, instanceID)
	}
	if err == nil {
		for k, v := range extra {
			env.Vars[k] = v
		}
	}
	if err != nil {
		e.recordAlert(Alert{Time: e.clk.Now(), RuleUUID: rule.UUID, InstanceID: instanceID,
			Action: "engine", Message: "environment build failed: " + err.Error()})
		span.EndErr(err)
		return
	}
	ok, evalErr := e.condition(rule, env)
	e.mu.Lock()
	e.stats.Evaluations++
	if ok {
		e.stats.Matches++
	}
	e.mu.Unlock()
	e.mx.evaluations.Inc()
	if ok {
		e.mx.matches.Inc()
	}
	if span != nil {
		span.Annotate("matched", fmt.Sprintf("%t", ok))
	}
	if evalErr != nil {
		var ee *expr.EvalError
		if !errors.As(evalErr, &ee) {
			e.recordAlert(Alert{Time: e.clk.Now(), RuleUUID: rule.UUID, InstanceID: instanceID,
				Action: "engine", Message: "condition error: " + evalErr.Error()})
			span.EndErr(evalErr)
			return
		}
		span.End()
		return
	}
	if !ok {
		span.End()
		return
	}
	metrics, _ := env.Vars["metrics"].(map[string]any)
	ctx = audit.WithActor(ctx, "rules")
	ac := &ActionContext{
		Ctx:      ctx,
		Rule:     rule,
		Instance: in,
		Metrics:  toFloatMap(metrics),
		Time:     e.clk.Now(),
	}
	var fired, failed []string
	for _, ref := range rule.Actions {
		e.mu.Lock()
		a, known := e.actions[ref.Action]
		e.mu.Unlock()
		ac.Params = ref.Params
		_, aspan := trace.Start(ctx, "rules.action")
		if aspan != nil {
			aspan.Annotate("action", ref.Action)
		}
		if !known {
			e.mu.Lock()
			e.stats.ActionErrors++
			e.mu.Unlock()
			e.mx.actionErrors.Inc()
			e.recordAlert(Alert{Time: e.clk.Now(), RuleUUID: rule.UUID, InstanceID: instanceID,
				Action: ref.Action, Message: "unknown action"})
			aspan.Fail("unknown action")
			aspan.End()
			continue
		}
		err := a(ac)
		aspan.EndErr(err)
		e.mu.Lock()
		e.stats.ActionsRun++
		if err != nil {
			e.stats.ActionErrors++
		}
		e.mu.Unlock()
		e.mx.actionsRun.Inc()
		if err != nil {
			e.mx.actionErrors.Inc()
		}
		if err != nil {
			failed = append(failed, ref.Action)
			e.recordAlert(Alert{Time: e.clk.Now(), RuleUUID: rule.UUID, InstanceID: instanceID,
				Action: ref.Action, Message: "action failed: " + err.Error()})
		} else {
			fired = append(fired, ref.Action)
		}
	}
	e.auditFiring(ctx, rule, in, instanceID, fired, failed)
	span.End()
}

// auditFiring records a rule firing on the matched instance's audit
// timeline, with the owning model joined through model_id.
func (e *Engine) auditFiring(ctx context.Context, rule *Rule, in *core.Instance, instanceID uuid.UUID, fired, failed []string) {
	if e.reg == nil || e.reg.Audit() == nil {
		return
	}
	detail := "actions: " + strings.Join(fired, ",")
	if len(failed) > 0 {
		detail += " failed: " + strings.Join(failed, ",")
	}
	ev := audit.Event{
		Action:     audit.ActionRuleFire,
		EntityType: audit.EntityInstance,
		EntityID:   instanceID.String(),
		Detail:     fmt.Sprintf("rule=%s (%s) %s", rule.Name, rule.UUID, detail),
	}
	if in != nil {
		ev.ModelID = in.ModelID.String()
	}
	_ = e.reg.Audit().Record(ctx, ev)
}

// condition evaluates given && when against env.
func (e *Engine) condition(rule *Rule, env *expr.Env) (bool, error) {
	given, when, err := rule.Condition()
	if err != nil {
		return false, err
	}
	for _, n := range []expr.Node{given, when} {
		if n == nil {
			continue
		}
		v, err := expr.EvalNode(n, env)
		if err != nil {
			return false, err
		}
		b, ok := v.(bool)
		if !ok {
			return false, fmt.Errorf("rules: condition of %s is not boolean", rule.UUID)
		}
		if !b {
			return false, nil
		}
	}
	return true, nil
}

// --- selection trigger (paper Fig. 8, Client 1) ---

// SelectModel applies a model-selection rule over the candidates matching
// filter and returns the winner (paper §3.7: "At serving time, users will
// query Gallery for the champion model to serve based on the user-defined
// rules").
func (e *Engine) SelectModel(ruleID string, filter core.InstanceFilter) (*core.Instance, error) {
	rule, ok := e.repo.Get(ruleID)
	if !ok {
		return nil, fmt.Errorf("rules: no active rule %s", ruleID)
	}
	if rule.Kind != KindSelection {
		return nil, fmt.Errorf("rules: %s is not a selection rule", ruleID)
	}
	e.mu.Lock()
	e.stats.SelectionRequests++
	e.mu.Unlock()
	e.mx.selections.Inc()

	candidates, err := e.reg.SearchInstances(filter)
	if err != nil {
		return nil, err
	}
	selNode, err := expr.Parse(rule.ModelSelection)
	if err != nil {
		return nil, err
	}

	var best *core.Instance
	var bestEnv map[string]any
	for _, c := range candidates {
		env, _, err := e.instanceEnv(context.Background(), c.ID)
		if err != nil {
			continue
		}
		ok, evalErr := e.condition(rule, env)
		e.mu.Lock()
		e.stats.Evaluations++
		if ok {
			e.stats.Matches++
		}
		e.mu.Unlock()
		e.mx.evaluations.Inc()
		if ok {
			e.mx.matches.Inc()
		}
		if evalErr != nil || !ok {
			continue
		}
		if best == nil {
			best, bestEnv = c, env.Vars
			continue
		}
		prefer, err := expr.EvalNode(selNode, &expr.Env{Vars: map[string]any{
			"a": env.Vars, "b": bestEnv,
		}})
		if err != nil {
			continue
		}
		if p, ok := prefer.(bool); ok && p {
			best, bestEnv = c, env.Vars
		}
	}
	if best == nil {
		return nil, fmt.Errorf("rules: no candidate satisfies rule %s", ruleID)
	}
	return best, nil
}

// instanceEnv builds the expression environment for one instance: its
// metadata fields plus the latest metrics across scopes (later lifecycle
// stages override earlier ones, so metrics.mape means the freshest,
// most production-like measurement).
func (e *Engine) instanceEnv(ctx context.Context, instanceID uuid.UUID) (*expr.Env, *core.Instance, error) {
	in, err := e.reg.GetInstanceCtx(ctx, instanceID)
	if err != nil {
		return nil, nil, err
	}
	model, err := e.reg.GetModel(in.ModelID)
	if err != nil {
		return nil, nil, err
	}
	metrics := make(map[string]any)
	for _, scope := range []core.Scope{core.ScopeTraining, core.ScopeValidation, core.ScopeProduction} {
		vals, err := e.reg.LatestMetrics(instanceID, scope)
		if err != nil {
			return nil, nil, err
		}
		for k, v := range vals {
			metrics[k] = v
		}
	}
	return &expr.Env{Vars: map[string]any{
		"instance_id":     in.ID.String(),
		"instance_name":   in.Name,
		"model_id":        model.ID.String(),
		"model_name":      model.Name,
		"model_domain":    model.Domain,
		"base_version_id": in.BaseVersionID,
		"project":         in.Project,
		"city":            in.City,
		"framework":       in.Framework,
		"created":         float64(in.Created.Unix()),
		"created_time":    float64(in.Created.Unix()),
		"deprecated":      in.Deprecated,
		"metrics":         metrics,
	}}, in, nil
}

func toFloatMap(m map[string]any) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// Alerts returns a copy of the alert log.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

func (e *Engine) recordAlert(a Alert) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.alerts = append(e.alerts, a)
	e.mx.alerts.Inc()
}

// Stats returns a snapshot of activity counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
