package tenant

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
	"gallery/internal/wal"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := Open(relstore.NewMemory(), Options{
		Clock: clock.NewMock(t0),
		UUIDs: uuid.NewSeeded(7),
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSplit(t *testing.T) {
	for _, tc := range []struct{ in, ns, rest string }{
		{"maps/eta", "maps", "eta"},
		{"eta", "default", "eta"},
		{"a/b/c", "a", "b/c"},
		{"/leading", "default", "/leading"},
	} {
		ns, rest := Split(tc.in)
		if ns != tc.ns || rest != tc.rest {
			t.Errorf("Split(%q) = %q,%q want %q,%q", tc.in, ns, rest, tc.ns, tc.rest)
		}
	}
}

func TestParseRole(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Role
	}{{"reader", RoleReader}, {"Publisher", RolePublisher}, {"OPERATOR", RoleOperator}} {
		got, err := ParseRole(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRole(%q) = %v,%v want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseRole("root"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParseRole(root) err = %v, want ErrBadSpec", err)
	}
	if RoleReader >= RolePublisher || RolePublisher >= RoleOperator {
		t.Fatal("role order broken")
	}
}

func TestDefaultNamespaceAlwaysExists(t *testing.T) {
	m := newManager(t)
	if _, _, err := m.GetNamespace(DefaultNamespace); err != nil {
		t.Fatalf("default namespace missing: %v", err)
	}
}

func TestMintResolveRevoke(t *testing.T) {
	m := newManager(t)
	ctx := context.Background()
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	secret, tok, err := m.MintToken(ctx, "maps", "alice", RolePublisher)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := m.Resolve(secret)
	if !ok {
		t.Fatal("freshly minted token did not resolve")
	}
	if id.Namespace != "maps" || id.Role != RolePublisher || id.Actor != "maps/alice" {
		t.Fatalf("identity = %+v", id)
	}
	// Resolve twice: second hit comes from the secret cache.
	if _, ok := m.Resolve(secret); !ok {
		t.Fatal("cached resolve failed")
	}
	if _, ok := m.Resolve("gal_bogus"); ok {
		t.Fatal("bogus secret resolved")
	}
	if err := m.RevokeToken(ctx, tok.ID); err != nil {
		t.Fatal(err)
	}
	// Revocation must take effect on the very next lookup, including the
	// cached path.
	if _, ok := m.Resolve(secret); ok {
		t.Fatal("revoked token still resolves")
	}
	if err := m.RevokeToken(ctx, tok.ID); err != nil {
		t.Fatalf("revoke not idempotent: %v", err)
	}
	if err := m.RevokeToken(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("revoking unknown token: %v", err)
	}
}

// TestPersistence proves the control plane rides the WAL: namespaces,
// tokens, revocations, and consumed quota all survive a store reopen.
func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	store, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := Open(store, Options{Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(7), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps", MaxModels: 5, MaxBlobBytes: 1000, RatePerSec: 10, Burst: 20}); err != nil {
		t.Fatal(err)
	}
	aliveSecret, _, err := m.MintToken(ctx, "maps", "alice", RolePublisher)
	if err != nil {
		t.Fatal(err)
	}
	deadSecret, deadTok, err := m.MintToken(ctx, "maps", "mallory", RoleOperator)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RevokeToken(ctx, deadTok.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveModel(ctx, "maps"); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveBlob(ctx, "maps", 400); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2, err := Open(store2, Options{Clock: clock.NewMock(t0), UUIDs: uuid.NewSeeded(8), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ns, u, err := m2.GetNamespace("maps")
	if err != nil {
		t.Fatal(err)
	}
	if ns.MaxModels != 5 || ns.MaxBlobBytes != 1000 || ns.RatePerSec != 10 || ns.Burst != 20 {
		t.Fatalf("recovered namespace = %+v", ns)
	}
	if u.Models != 1 || u.BlobBytes != 400 {
		t.Fatalf("recovered usage = %+v, want models=1 blob_bytes=400", u)
	}
	if id, ok := m2.Resolve(aliveSecret); !ok || id.Actor != "maps/alice" {
		t.Fatalf("live token lost in recovery (ok=%v id=%+v)", ok, id)
	}
	if _, ok := m2.Resolve(deadSecret); ok {
		t.Fatal("revoked token resurrected by recovery")
	}
	// The recovered usage still enforces: 601 more bytes would break 1000.
	if err := m2.ReserveBlob(ctx, "maps", 601); !errors.Is(err, ErrBlobQuota) {
		t.Fatalf("recovered quota not enforced: %v", err)
	}
}

// TestQuotaConcurrentReserve races reservations against one bound: with
// MaxBlobBytes=1000 and ten concurrent 200-byte reserves, exactly five
// may win regardless of interleaving.
func TestQuotaConcurrentReserve(t *testing.T) {
	m := newManager(t)
	ctx := context.Background()
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps", MaxBlobBytes: 1000}); err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		won  int
		lost int
	)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := m.ReserveBlob(ctx, "maps", 200)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				won++
			} else if errors.Is(err, ErrBlobQuota) {
				lost++
			} else {
				t.Errorf("unexpected reserve error: %v", err)
			}
		}()
	}
	wg.Wait()
	if won != 5 || lost != 5 {
		t.Fatalf("won=%d lost=%d, want exactly 5/5", won, lost)
	}
	// Releasing one reservation frees exactly its bytes for the next.
	m.ReleaseBlob(ctx, "maps", 200)
	if err := m.ReserveBlob(ctx, "maps", 200); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if err := m.ReserveBlob(ctx, "maps", 1); !errors.Is(err, ErrBlobQuota) {
		t.Fatalf("quota over-released: %v", err)
	}
}

func TestModelQuota(t *testing.T) {
	m := newManager(t)
	ctx := context.Background()
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps", MaxModels: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.ReserveModel(ctx, "maps"); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ReserveModel(ctx, "maps"); !errors.Is(err, ErrModelQuota) {
		t.Fatalf("third model admitted: %v", err)
	}
	m.ReleaseModel(ctx, "maps")
	if err := m.ReserveModel(ctx, "maps"); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	// The default namespace is unlimited.
	for i := 0; i < 100; i++ {
		if err := m.ReserveModel(ctx, DefaultNamespace); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentMintRevokeResolve is the -race workout: minting, revoking,
// and resolving the same namespace's tokens from many goroutines.
func TestConcurrentMintRevokeResolve(t *testing.T) {
	m := newManager(t)
	ctx := context.Background()
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				secret, tok, err := m.MintToken(ctx, "maps", fmt.Sprintf("w%d-%d", w, i), RoleReader)
				if err != nil {
					t.Errorf("mint: %v", err)
					return
				}
				if _, ok := m.Resolve(secret); !ok {
					t.Error("minted token did not resolve")
					return
				}
				if i%2 == 0 {
					if err := m.RevokeToken(ctx, tok.ID); err != nil {
						t.Errorf("revoke: %v", err)
						return
					}
					if _, ok := m.Resolve(secret); ok {
						t.Error("revoked token resolved")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := workers * 12 // 13 of each worker's 25 tokens are revoked (even i)
	toks := m.Tokens("maps")
	if len(toks) != workers*25 {
		t.Fatalf("tokens = %d, want %d", len(toks), workers*25)
	}
	live := 0
	for _, tok := range toks {
		if !tok.Revoked {
			live++
		}
	}
	if live != want {
		t.Fatalf("live tokens = %d, want %d", live, want)
	}
}

func TestSeedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens.json")
	blob := `{
	  "namespaces": [{"name": "maps", "max_models": 3, "rate_per_sec": 5, "burst": 10}],
	  "tokens": [
	    {"secret": "gal_seed_reader", "name": "ci", "namespace": "maps", "role": "reader"},
	    {"secret": "gal_seed_admin", "name": "root", "role": "operator"}
	  ]
	}`
	if err := os.WriteFile(path, []byte(blob), 0o600); err != nil {
		t.Fatal(err)
	}
	seed, err := LoadSeed(path)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t)
	ctx := context.Background()
	if err := m.ApplySeed(ctx, seed); err != nil {
		t.Fatal(err)
	}
	// Idempotent: applying the same seed again changes nothing.
	if err := m.ApplySeed(ctx, seed); err != nil {
		t.Fatalf("second apply: %v", err)
	}
	if id, ok := m.Resolve("gal_seed_reader"); !ok || id.Namespace != "maps" || id.Role != RoleReader {
		t.Fatalf("seeded reader = %+v ok=%v", id, ok)
	}
	// A token without a namespace lands in default.
	if id, ok := m.Resolve("gal_seed_admin"); !ok || id.Namespace != DefaultNamespace || id.Role != RoleOperator {
		t.Fatalf("seeded admin = %+v ok=%v", id, ok)
	}
	if got := m.Tokens("maps"); len(got) != 1 {
		t.Fatalf("maps tokens = %d, want 1 (idempotency broken)", len(got))
	}
	ns, _, err := m.GetNamespace("maps")
	if err != nil || ns.MaxModels != 3 {
		t.Fatalf("seeded namespace = %+v err=%v", ns, err)
	}
}

func TestNamespaceValidation(t *testing.T) {
	m := newManager(t)
	ctx := context.Background()
	for _, bad := range []string{"", "a/b", "has space"} {
		if err := m.CreateNamespace(ctx, Namespace{Name: bad}); !errors.Is(err, ErrBadSpec) {
			t.Errorf("CreateNamespace(%q) = %v, want ErrBadSpec", bad, err)
		}
	}
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps"}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate namespace: %v", err)
	}
	if _, _, err := m.MintToken(ctx, "ghost", "x", RoleReader); !errors.Is(err, ErrNotFound) {
		t.Errorf("mint in unknown namespace: %v", err)
	}
}

func TestSetQuotasReconfiguresLimiter(t *testing.T) {
	clk := clock.NewMock(t0)
	m, err := Open(relstore.NewMemory(), Options{Clock: clk, UUIDs: uuid.NewSeeded(7), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.CreateNamespace(ctx, Namespace{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetQuotas(ctx, "maps", 0, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	ns, _, _ := m.GetNamespace("maps")
	if ns.RatePerSec != 1 || ns.Burst != 2 {
		t.Fatalf("quotas = %+v", ns)
	}
	if err := m.SetQuotas(ctx, "ghost", 0, 0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("set quotas on unknown namespace: %v", err)
	}
}
