package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestParseMetricsBlob(t *testing.T) {
	blob := []byte("mape:8.2\nbias:-0.05, r2:0.91\n\n precision : 0.8 ")
	got, err := ParseMetricsBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"mape": 8.2, "bias": -0.05, "r2": 0.91, "precision": 0.8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseMetricsBlobErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(""),
		[]byte("\n,\n"),
		[]byte("noseparator"),
		[]byte("mape:abc"),
		[]byte(":1.0"),
		[]byte("mape:1\nmape:2"), // duplicate
	}
	for _, blob := range bad {
		if _, err := ParseMetricsBlob(blob); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseMetricsBlob(%q) = %v, want ErrBadSpec", blob, err)
		}
	}
}

// Property: Format/Parse is an identity for finite values.
func TestQuickMetricsBlobRoundTrip(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip non-finite draws
			}
		}
		in := map[string]float64{"mape": a, "bias": b, "r2": c}
		out, err := ParseMetricsBlob(FormatMetricsBlob(in))
		if err != nil {
			return false
		}
		return out["mape"] == a && out["bias"] == b && out["r2"] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMetricsBlob(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if err := h.g.InsertMetricsBlob(in.ID, ScopeValidation, []byte("mape:7.5\nbias:0.01")); err != nil {
		t.Fatal(err)
	}
	vals, err := h.g.LatestMetrics(in.ID, ScopeValidation)
	if err != nil {
		t.Fatal(err)
	}
	if vals["mape"] != 7.5 || vals["bias"] != 0.01 {
		t.Fatalf("vals = %v", vals)
	}
	if err := h.g.InsertMetricsBlob(in.ID, ScopeValidation, []byte("garbage")); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad blob err = %v", err)
	}
}

func TestCheckFleetHealth(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "fleet")

	healthy := h.upload(t, m, "sf", []byte("a"))
	drifted := h.upload(t, m, "nyc", []byte("b"))
	skewed := h.upload(t, m, "la", []byte("c"))
	bare, err := h.g.UploadInstance(InstanceSpec{ModelID: m.ID, Name: "bare", City: "chi"}, []byte("d"))
	if err != nil {
		t.Fatal(err)
	}

	report := func(in *Instance, scope Scope, name string, v float64) {
		t.Helper()
		h.clk.Advance(time.Minute)
		if _, err := h.g.InsertMetric(in.ID, name, scope, v); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy: stable production series matching validation.
	report(healthy, ScopeValidation, "mape", 8)
	for i := 0; i < 20; i++ {
		report(healthy, ScopeProduction, "mape", 8.1)
	}
	// Drifted: production error ramps up.
	report(drifted, ScopeValidation, "mape", 8)
	for i := 0; i < 15; i++ {
		report(drifted, ScopeProduction, "mape", 8)
	}
	for i := 0; i < 10; i++ {
		report(drifted, ScopeProduction, "mape", 16)
	}
	// Skewed: offline 8, production 14, but stable (no drift).
	report(skewed, ScopeValidation, "mape", 8)
	for i := 0; i < 20; i++ {
		report(skewed, ScopeProduction, "mape", 14)
	}

	rep, err := h.g.CheckFleetHealth(FleetHealthConfig{
		Project: "marketplace",
		Metric:  "mape",
		Drift:   DriftConfig{Window: 10, Baseline: 15},
		Skew:    SkewConfig{Threshold: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.Drifted != 1 {
		t.Errorf("drifted = %d, want 1", rep.Drifted)
	}
	// Both the skewed and the drifted instance have production far from
	// offline, so skew >= 1; the healthy one must not be flagged.
	if rep.Skewed < 1 {
		t.Errorf("skewed = %d, want >= 1", rep.Skewed)
	}
	if rep.MissingMetrics != 1 { // the bare instance
		t.Errorf("missing metrics = %d, want 1", rep.MissingMetrics)
	}
	byID := map[string]InstanceHealth{}
	for _, ih := range rep.Instances {
		byID[ih.City] = ih
	}
	if byID["sf"].Drift.Drifted || byID["sf"].Skew.Skewed {
		t.Error("healthy instance flagged")
	}
	if !byID["nyc"].Drift.Drifted {
		t.Error("drifted instance not flagged")
	}
	if !byID["la"].Skew.Skewed {
		t.Error("skewed instance not flagged")
	}
	if byID["chi"].HasMetrics {
		t.Error("bare instance claims metrics")
	}
	_ = bare
}

func TestFleetHealthSkipsDeprecated(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "fleet")
	in := h.upload(t, m, "sf", []byte("a"))
	if err := h.g.DeprecateInstance(in.ID); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckFleetHealth(FleetHealthConfig{Project: "marketplace"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Fatalf("swept %d deprecated instances", rep.Total)
	}
}
