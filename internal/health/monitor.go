// Package health is Gallery's continuous model-health monitor (paper
// §3.6 made continuous). Serving gateways flush windowed distribution
// sketches of what each model actually predicted (internal/serve →
// POST /v1/health/observations); the monitor persists those windows
// through the DAL, captures a reference distribution from the first
// windows after a model is (re)promoted, and on every evaluation tick
// compares live traffic against that reference with PSI/KL divergence —
// alongside the registry's on-demand CheckDrift/CheckSkew over ingested
// metrics. Each model carries a health status (unknown → healthy →
// warning → degraded) with human-readable reasons, published as obs
// gauges and served at GET /v1/health/models. Degradations emit
// health.drift / health.skew events into the rules engine, closing the
// paper's detect → Given/When/Then → retrain/deprecate loop end to end.
package health

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/obs/sketch"
	"gallery/internal/uuid"
)

// Status is a model's health verdict.
type Status string

// Health statuses, in escalation order.
const (
	StatusUnknown  Status = "unknown"
	StatusHealthy  Status = "healthy"
	StatusWarning  Status = "warning"
	StatusDegraded Status = "degraded"
)

// rank orders statuses for escalation; see raise.
func (s Status) rank() int {
	switch s {
	case StatusHealthy:
		return 1
	case StatusWarning:
		return 2
	case StatusDegraded:
		return 3
	default:
		return 0
	}
}

// raise returns the more severe of two statuses.
func raise(a, b Status) Status {
	if b.rank() > a.rank() {
		return b
	}
	return a
}

// EventSink receives health events; *rules.Engine satisfies it.
type EventSink interface {
	HealthEvent(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]float64)
}

// TransitionSink receives every status transition. Evaluate fires it
// after releasing the monitor lock, so the sink may call back into List
// — the incident flight recorder does exactly that while assembling a
// bundle's health section.
type TransitionSink interface {
	HealthTransition(ctx context.Context, modelID uuid.UUID, from, to Status, reasons []string)
}

// Config tunes the monitor.
type Config struct {
	// Metric is the production error metric fed to CheckDrift/CheckSkew
	// (default "mape").
	Metric string
	// ReferenceWindows is how many initial windows after a (re)promotion
	// form the reference distribution (default 3).
	ReferenceWindows int
	// LiveWindows is how many recent windows are merged into the live
	// distribution (default 3).
	LiveWindows int
	// MinSamples gates PSI: both sides need at least this many
	// observations before a verdict (default 50).
	MinSamples int64
	// PSIWarn and PSIDegraded are the PSI operating points (defaults 0.1
	// and 0.25 — the conventional moderate/significant shift levels).
	PSIWarn     float64
	PSIDegraded float64
	// StaleWarnRatio flags a window serving mostly stale answers
	// (default 0.5).
	StaleWarnRatio float64
	// Interval is the evaluation tick (default 30s). Zero uses the
	// default; negative disables the loop (tests call Evaluate).
	Interval time.Duration
	// KeepWindows bounds stored windows per model (default 48).
	KeepWindows int
	// Drift and Skew tune the metric-history checks; their Metric field
	// is defaulted from Metric.
	Drift core.DriftConfig
	Skew  core.SkewConfig
	// Obs receives monitor metrics; nil uses obs.Default.
	Obs *obs.Registry
	// Events receives health.drift/health.skew events; may be nil.
	Events EventSink
	// Transitions receives every status change, outside the monitor
	// lock; may be nil.
	Transitions TransitionSink
}

func (c *Config) defaults() {
	if c.Metric == "" {
		c.Metric = "mape"
	}
	if c.ReferenceWindows <= 0 {
		c.ReferenceWindows = 3
	}
	if c.LiveWindows <= 0 {
		c.LiveWindows = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.PSIWarn <= 0 {
		c.PSIWarn = 0.1
	}
	if c.PSIDegraded <= 0 {
		c.PSIDegraded = 0.25
	}
	if c.StaleWarnRatio <= 0 {
		c.StaleWarnRatio = 0.5
	}
	if c.Interval == 0 {
		c.Interval = 30 * time.Second
	}
	if c.KeepWindows <= 0 {
		c.KeepWindows = 48
	}
	if c.Drift.Metric == "" {
		c.Drift.Metric = c.Metric
	}
	if c.Skew.Metric == "" {
		c.Skew.Metric = c.Metric
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
}

// modelState is everything the monitor knows about one model.
type modelState struct {
	modelID    uuid.UUID
	instanceID uuid.UUID // instance observed serving; reference resets when it changes

	ref        sketch.Snapshot // merged reference distribution
	refWindows int
	live       []sketch.Snapshot // ring of recent value windows
	liveLat    []sketch.Snapshot // ring of recent latency windows

	windows       int
	totalRequests int64
	totalStale    int64
	lastRequests  int64
	lastStale     int64
	lastStart     time.Time
	lastEnd       time.Time

	// verdict, refreshed by Evaluate
	status  Status
	reasons []string
	psi, kl float64
	drift   *core.DriftReport
	skew    *core.SkewReport
	// emitted dedups events per degradation episode; cleared on recovery.
	emitted map[string]bool
}

// resetDistributions forgets reference and live windows — called when the
// serving instance changes, so a new promotion earns a fresh baseline.
func (st *modelState) resetDistributions() {
	st.ref = sketch.Snapshot{}
	st.refWindows = 0
	st.live = nil
	st.liveLat = nil
	st.emitted = nil
}

type monitorMetrics struct {
	windows     *obs.Counter
	rejected    *obs.Counter
	evaluations *obs.Counter
	events      *obs.Counter
	models      *obs.Gauge
}

// Monitor ingests gateway observations and maintains per-model health.
type Monitor struct {
	reg *core.Registry
	cfg Config

	mu     sync.Mutex
	models map[uuid.UUID]*modelState

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mx monitorMetrics
}

// New builds a Monitor. Call Start to run its evaluation loop, or drive
// Evaluate directly.
func New(reg *core.Registry, cfg Config) *Monitor {
	cfg.defaults()
	m := &Monitor{
		reg:    reg,
		cfg:    cfg,
		models: make(map[uuid.UUID]*modelState),
		done:   make(chan struct{}),
		mx: monitorMetrics{
			windows:     cfg.Obs.Counter("health_windows_total"),
			rejected:    cfg.Obs.Counter("health_windows_rejected_total"),
			evaluations: cfg.Obs.Counter("health_evaluations_total"),
			events:      cfg.Obs.Counter("health_events_total"),
			models:      cfg.Obs.Gauge("health_models"),
		},
	}
	return m
}

// Start launches the evaluation loop (unless Interval is negative).
func (m *Monitor) Start() {
	if m.cfg.Interval <= 0 {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.done:
				return
			case <-t.C:
				m.Evaluate(context.Background())
			}
		}
	}()
}

// Stop halts the evaluation loop.
func (m *Monitor) Stop() {
	m.closeOnce.Do(func() { close(m.done) })
	m.wg.Wait()
}

// state returns (creating if needed) the tracked state for a model.
// Caller holds m.mu.
func (m *Monitor) state(modelID uuid.UUID) *modelState {
	st, ok := m.models[modelID]
	if !ok {
		st = &modelState{modelID: modelID, status: StatusUnknown}
		m.models[modelID] = st
		m.mx.models.Set(float64(len(m.models)))
	}
	return st
}

// Ingest accepts one gateway flush: every observation is persisted as a
// health window through the DAL and folded into the model's in-memory
// state. Individually malformed observations are counted and skipped
// rather than failing the batch.
func (m *Monitor) Ingest(ctx context.Context, req api.HealthObservationsRequest) (api.HealthObservationsResponse, error) {
	var resp api.HealthObservationsResponse
	for _, o := range req.Observations {
		modelID, err := uuid.Parse(o.ModelID)
		if err != nil || o.Requests < 0 || o.Values.Validate() != nil || o.Latency.Validate() != nil {
			resp.Rejected++
			m.mx.rejected.Inc()
			continue
		}
		w := &core.HealthWindow{
			ModelID:     modelID,
			InstanceID:  parseOrNil(o.InstanceID),
			Gateway:     req.Gateway,
			Start:       o.WindowStart,
			End:         o.WindowEnd,
			Requests:    o.Requests,
			StaleServes: o.StaleServes,
		}
		if b, err := json.Marshal(o.Values); err == nil {
			w.ValuesSketch = string(b)
		}
		if b, err := json.Marshal(o.Latency); err == nil {
			w.LatencySketch = string(b)
		}
		if err := m.reg.InsertHealthWindow(ctx, w); err != nil {
			return resp, err
		}
		if _, err := m.reg.PruneHealthWindows(ctx, modelID, m.cfg.KeepWindows); err != nil {
			return resp, err
		}
		m.mu.Lock()
		m.fold(m.state(modelID), w.InstanceID, o)
		m.mu.Unlock()
		resp.Accepted++
		m.mx.windows.Inc()
	}
	return resp, nil
}

// fold merges one observation window into a model's state. Caller holds
// m.mu.
func (m *Monitor) fold(st *modelState, instanceID uuid.UUID, o api.HealthObservation) {
	if !instanceID.IsNil() && instanceID != st.instanceID {
		if !st.instanceID.IsNil() {
			// Hot swap: the new instance's output distribution gets a
			// fresh reference instead of being judged against the old
			// model's shape.
			st.resetDistributions()
		}
		st.instanceID = instanceID
	}
	if st.refWindows < m.cfg.ReferenceWindows {
		if merged, err := st.ref.Merge(o.Values); err == nil {
			st.ref = merged
			st.refWindows++
		}
	} else {
		st.live = appendRing(st.live, o.Values, m.cfg.LiveWindows)
		st.liveLat = appendRing(st.liveLat, o.Latency, m.cfg.LiveWindows)
	}
	st.windows++
	st.totalRequests += o.Requests
	st.totalStale += o.StaleServes
	st.lastRequests = o.Requests
	st.lastStale = o.StaleServes
	st.lastStart = o.WindowStart
	st.lastEnd = o.WindowEnd
}

func appendRing(ring []sketch.Snapshot, s sketch.Snapshot, max int) []sketch.Snapshot {
	ring = append(ring, s)
	if len(ring) > max {
		ring = ring[len(ring)-max:]
	}
	return ring
}

// mergeAll folds a ring of snapshots into one; empty ring yields a zero
// snapshot.
func mergeAll(ring []sketch.Snapshot) sketch.Snapshot {
	var out sketch.Snapshot
	for _, s := range ring {
		if out.Count == 0 {
			out = s
			continue
		}
		if merged, err := out.Merge(s); err == nil {
			out = merged
		}
	}
	return out
}

// Recover rebuilds in-memory state from persisted health windows — called
// once at startup so a galleryd restart does not forget every model's
// reference distribution.
func (m *Monitor) Recover() error {
	ids, err := m.reg.HealthWindowModels()
	if err != nil {
		return err
	}
	for _, id := range ids {
		ws, err := m.reg.HealthWindows(id, m.cfg.KeepWindows)
		if err != nil {
			return err
		}
		m.mu.Lock()
		st := m.state(id)
		for _, w := range ws {
			o := api.HealthObservation{
				WindowStart: w.Start,
				WindowEnd:   w.End,
				Requests:    w.Requests,
				StaleServes: w.StaleServes,
			}
			if json.Unmarshal([]byte(w.ValuesSketch), &o.Values) != nil {
				continue
			}
			_ = json.Unmarshal([]byte(w.LatencySketch), &o.Latency)
			m.fold(st, w.InstanceID, o)
		}
		m.mu.Unlock()
	}
	return nil
}

// Evaluate runs one monitoring pass over every tracked model: PSI/KL of
// live vs. reference, the registry's drift/skew checks, status
// transitions, gauge publication, and event emission. Exported so tests
// and experiments run deterministic passes instead of waiting out the
// ticker.
func (m *Monitor) Evaluate(ctx context.Context) {
	m.mx.evaluations.Inc()
	// Transitions are collected under the lock and delivered after it is
	// released: a sink that snapshots health state calls List, which
	// takes m.mu.
	var fired []transitionNote
	m.mu.Lock()
	for _, st := range m.models {
		if note := m.evaluateLocked(ctx, st); note != nil {
			fired = append(fired, *note)
		}
	}
	m.mu.Unlock()
	if m.cfg.Transitions != nil {
		for _, n := range fired {
			m.cfg.Transitions.HealthTransition(ctx, n.modelID, n.from, n.to, n.reasons)
		}
	}
}

// transitionNote carries one status change out from under the lock.
type transitionNote struct {
	modelID  uuid.UUID
	from, to Status
	reasons  []string
}

func (m *Monitor) evaluateLocked(ctx context.Context, st *modelState) *transitionNote {
	live := mergeAll(st.live)

	psiOK := false
	st.psi, st.kl = 0, 0
	if st.refWindows >= m.cfg.ReferenceWindows &&
		st.ref.Count >= m.cfg.MinSamples && live.Count >= m.cfg.MinSamples {
		if psi, err := sketch.PSI(st.ref, live); err == nil {
			kl, _ := sketch.KL(st.ref, live)
			st.psi, st.kl = psi, kl
			psiOK = true
		}
	}

	st.drift, st.skew = nil, nil
	if !st.instanceID.IsNil() {
		// The metric-history checks ride along; errors (unknown instance,
		// no metrics yet) just leave them unchecked.
		if rep, err := m.reg.CheckDrift(st.instanceID, m.cfg.Drift); err == nil {
			st.drift = rep
		}
		if rep, err := m.reg.CheckSkew(st.instanceID, m.cfg.Skew); err == nil {
			st.skew = rep
		}
	}

	status := StatusUnknown
	var reasons []string
	verdict := false

	if psiOK {
		verdict = true
		switch {
		case st.psi >= m.cfg.PSIDegraded:
			status = raise(status, StatusDegraded)
			reasons = append(reasons, fmt.Sprintf(
				"prediction distribution shifted: psi=%.3f >= %.2f", st.psi, m.cfg.PSIDegraded))
		case st.psi >= m.cfg.PSIWarn:
			status = raise(status, StatusWarning)
			reasons = append(reasons, fmt.Sprintf(
				"prediction distribution drifting: psi=%.3f >= %.2f", st.psi, m.cfg.PSIWarn))
		default:
			status = raise(status, StatusHealthy)
		}
	}
	if st.drift != nil && st.drift.Checked {
		verdict = true
		if st.drift.Drifted {
			status = raise(status, StatusDegraded)
			reasons = append(reasons, fmt.Sprintf(
				"production %s degraded %.0f%% vs baseline", st.drift.Metric, st.drift.Degradation*100))
		} else {
			status = raise(status, StatusHealthy)
		}
	}
	if st.skew != nil && st.skew.Checked {
		verdict = true
		if st.skew.Skewed {
			status = raise(status, StatusDegraded)
			reasons = append(reasons, fmt.Sprintf(
				"production %s skewed %.0f%% vs offline", st.skew.Metric, st.skew.Gap*100))
		} else {
			status = raise(status, StatusHealthy)
		}
	}
	if st.lastRequests > 0 {
		staleRatio := float64(st.lastStale) / float64(st.lastRequests)
		if staleRatio >= m.cfg.StaleWarnRatio {
			status = raise(status, StatusWarning)
			reasons = append(reasons, fmt.Sprintf(
				"%.0f%% of last window served stale", staleRatio*100))
			verdict = true
		}
	}
	if !verdict {
		status = StatusUnknown
		reasons = append(reasons, fmt.Sprintf(
			"collecting data: %d/%d reference windows, %d live samples",
			st.refWindows, m.cfg.ReferenceWindows, live.Count))
	}
	prev := st.status
	st.status = status
	st.reasons = reasons

	var note *transitionNote
	if prev != status {
		if m.reg != nil && m.reg.Audit() != nil {
			_ = m.reg.Audit().Record(audit.WithActor(ctx, "health-monitor"), audit.Event{
				Action:     audit.ActionHealthTransition,
				EntityType: audit.EntityModel,
				EntityID:   st.modelID.String(),
				ModelID:    st.modelID.String(),
				Before:     string(prev),
				After:      string(status),
				Detail:     strings.Join(reasons, "; "),
			})
		}
		note = &transitionNote{modelID: st.modelID, from: prev, to: status, reasons: reasons}
	}

	m.publishGauges(st)
	m.emitEvents(ctx, st)
	return note
}

// publishGauges mirrors a model's verdict into the obs registry. Status
// is encoded 0=unknown 1=healthy 2=warning 3=degraded.
func (m *Monitor) publishGauges(st *modelState) {
	id := st.modelID.String()
	m.cfg.Obs.Gauge(obs.Name("health_model_status", "model", id)).Set(float64(st.status.rank()))
	m.cfg.Obs.Gauge(obs.Name("health_model_psi", "model", id)).Set(st.psi)
}

// emitEvents raises health.drift / health.skew into the rules engine,
// once per degradation episode; recovery re-arms the emission.
func (m *Monitor) emitEvents(ctx context.Context, st *modelState) {
	if m.cfg.Events == nil || st.instanceID.IsNil() {
		return
	}
	if st.status != StatusDegraded {
		if st.status == StatusHealthy {
			st.emitted = nil
		}
		return
	}
	if st.emitted == nil {
		st.emitted = make(map[string]bool)
	}
	distShift := st.psi >= m.cfg.PSIDegraded
	metricDrift := st.drift != nil && st.drift.Checked && st.drift.Drifted
	if distShift || metricDrift {
		if !st.emitted["drift"] {
			st.emitted["drift"] = true
			fields := map[string]float64{"psi": st.psi, "kl": st.kl}
			if metricDrift {
				fields["degradation"] = st.drift.Degradation
			}
			m.mx.events.Inc()
			m.cfg.Events.HealthEvent(ctx, st.instanceID, "drift", fields)
		}
	}
	if st.skew != nil && st.skew.Checked && st.skew.Skewed && !st.emitted["skew"] {
		st.emitted["skew"] = true
		m.mx.events.Inc()
		m.cfg.Events.HealthEvent(ctx, st.instanceID, "skew", map[string]float64{
			"gap": st.skew.Gap, "psi": st.psi,
		})
	}
}

// ModelHealth reports one model's current verdict.
func (m *Monitor) ModelHealth(modelID string) (api.ModelHealth, bool) {
	id, err := uuid.Parse(modelID)
	if err != nil {
		return api.ModelHealth{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.models[id]
	if !ok {
		return api.ModelHealth{}, false
	}
	return m.renderLocked(st), true
}

// List reports every tracked model's verdict, ordered by model ID.
func (m *Monitor) List() []api.ModelHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]api.ModelHealth, 0, len(m.models))
	for _, st := range m.models {
		out = append(out, m.renderLocked(st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModelID < out[j].ModelID })
	return out
}

func (m *Monitor) renderLocked(st *modelState) api.ModelHealth {
	live := mergeAll(st.live)
	lat := mergeAll(st.liveLat)
	h := api.ModelHealth{
		ModelID:        st.modelID.String(),
		InstanceID:     uuidOrEmpty(st.instanceID),
		Status:         string(st.status),
		Reasons:        append([]string(nil), st.reasons...),
		PSI:            st.psi,
		KL:             st.kl,
		Windows:        st.windows,
		ReferenceCount: st.ref.Count,
		LiveCount:      live.Count,
		Requests:       st.totalRequests,
		StaleServes:    st.totalStale,
		LiveMean:       live.Mean(),
		ReferenceMean:  st.ref.Mean(),
		LastSeen:       st.lastEnd,
		LatencyP95MS:   lat.Quantile(0.95) * 1000,
	}
	if st.status == "" {
		h.Status = string(StatusUnknown)
	}
	if d := st.lastEnd.Sub(st.lastStart); d > 0 && st.lastRequests > 0 {
		h.RequestRate = float64(st.lastRequests) / d.Seconds()
	}
	if st.drift != nil {
		h.Drift = &api.DriftReport{
			InstanceID:   st.drift.InstanceID.String(),
			Metric:       st.drift.Metric,
			BaselineMean: st.drift.BaselineMean,
			RecentMean:   st.drift.RecentMean,
			Degradation:  st.drift.Degradation,
			Drifted:      st.drift.Drifted,
			Checked:      st.drift.Checked,
			Samples:      st.drift.Samples,
		}
	}
	if st.skew != nil {
		h.Skew = &api.SkewReport{
			InstanceID:   st.skew.InstanceID.String(),
			Metric:       st.skew.Metric,
			OfflineScope: string(st.skew.OfflineScope),
			Offline:      st.skew.Offline,
			Production:   st.skew.Production,
			Gap:          st.skew.Gap,
			Skewed:       st.skew.Skewed,
			Checked:      st.skew.Checked,
		}
	}
	return h
}

func parseOrNil(s string) uuid.UUID {
	if s == "" {
		return uuid.Nil
	}
	u, err := uuid.Parse(s)
	if err != nil {
		return uuid.Nil
	}
	return u
}

func uuidOrEmpty(u uuid.UUID) string {
	if u.IsNil() {
		return ""
	}
	return u.String()
}
