package main

// The tenant subcommand: namespace, quota, and token administration
// against a galleryd running -auth. Requires an operator token.
//
//	galleryctl -token gal_... tenant create -ns maps -max-models 100
//	galleryctl -token gal_... tenant list
//	galleryctl -token gal_... tenant quotas -ns maps -rate 500 -burst 1000
//	galleryctl -token gal_... tenant mint -ns maps -name maps-ci -role publisher
//	galleryctl -token gal_... tenant tokens -ns maps
//	galleryctl -token gal_... tenant revoke -ns maps -id TOKEN_UUID

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"gallery/internal/api"
	"gallery/internal/client"
)

func cmdTenant(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tenant create|list|quotas|mint|tokens|revoke [args]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "create":
		fs := flag.NewFlagSet("tenant create", flag.ExitOnError)
		ns := fs.String("ns", "", "namespace name (required)")
		maxModels := fs.Int64("max-models", 0, "model-count quota (0 = unlimited)")
		maxBlob := fs.Int64("max-blob-bytes", 0, "blob-byte quota (0 = unlimited)")
		rate := fs.Float64("rate", 0, "sustained requests/sec (0 = unlimited)")
		burst := fs.Int64("burst", 0, "rate-limit burst depth")
		fs.Parse(rest)
		if *ns == "" {
			return fmt.Errorf("tenant create: -ns is required")
		}
		return dump(c.CreateNamespace(api.CreateNamespaceRequest{
			Name: *ns, MaxModels: *maxModels, MaxBlobBytes: *maxBlob,
			RatePerSec: *rate, Burst: *burst,
		}))
	case "list":
		nss, err := c.Namespaces()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAMESPACE\tMODELS\tBLOB BYTES\tRATE/S\tBURST\tCREATED")
		for _, ns := range nss {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
				ns.Name,
				quota(ns.Models, ns.MaxModels),
				quota(ns.BlobBytes, ns.MaxBlobBytes),
				unlimited(ns.RatePerSec), unlimitedInt(ns.Burst),
				ns.Created.Format("2006-01-02 15:04"))
		}
		return w.Flush()
	case "quotas":
		fs := flag.NewFlagSet("tenant quotas", flag.ExitOnError)
		ns := fs.String("ns", "", "namespace name (required)")
		maxModels := fs.Int64("max-models", 0, "model-count quota (0 = unlimited)")
		maxBlob := fs.Int64("max-blob-bytes", 0, "blob-byte quota (0 = unlimited)")
		rate := fs.Float64("rate", 0, "sustained requests/sec (0 = unlimited)")
		burst := fs.Int64("burst", 0, "rate-limit burst depth")
		fs.Parse(rest)
		if *ns == "" {
			return fmt.Errorf("tenant quotas: -ns is required")
		}
		return dump(c.SetQuotas(*ns, api.SetQuotasRequest{
			MaxModels: *maxModels, MaxBlobBytes: *maxBlob,
			RatePerSec: *rate, Burst: *burst,
		}))
	case "mint":
		fs := flag.NewFlagSet("tenant mint", flag.ExitOnError)
		ns := fs.String("ns", "", "namespace name (required)")
		name := fs.String("name", "", "token holder name (required)")
		role := fs.String("role", "reader", "reader|publisher|operator")
		fs.Parse(rest)
		if *ns == "" || *name == "" {
			return fmt.Errorf("tenant mint: -ns and -name are required")
		}
		resp, err := c.MintToken(*ns, api.MintTokenRequest{Name: *name, Role: *role})
		if err != nil {
			return err
		}
		fmt.Printf("token %s (%s, %s in %s)\nsecret (shown once, store it now):\n%s\n",
			resp.Token.ID, resp.Token.Name, resp.Token.Role, resp.Token.Namespace, resp.Secret)
		return nil
	case "tokens":
		fs := flag.NewFlagSet("tenant tokens", flag.ExitOnError)
		ns := fs.String("ns", "", "namespace name (required)")
		fs.Parse(rest)
		if *ns == "" {
			return fmt.Errorf("tenant tokens: -ns is required")
		}
		toks, err := c.Tokens(*ns)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tNAME\tROLE\tCREATED\tREVOKED")
		for _, t := range toks {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%v\n",
				t.ID, t.Name, t.Role, t.Created.Format("2006-01-02 15:04"), t.Revoked)
		}
		return w.Flush()
	case "revoke":
		fs := flag.NewFlagSet("tenant revoke", flag.ExitOnError)
		ns := fs.String("ns", "", "namespace name (required)")
		id := fs.String("id", "", "token id (required)")
		fs.Parse(rest)
		if *ns == "" || *id == "" {
			return fmt.Errorf("tenant revoke: -ns and -id are required")
		}
		if err := c.RevokeToken(*ns, *id); err != nil {
			return err
		}
		fmt.Printf("revoked %s\n", *id)
		return nil
	}
	return fmt.Errorf("tenant: unknown subcommand %q", sub)
}

// quota renders "used/limit" with unlimited limits as a bare count.
func quota(used, limit int64) string {
	if limit <= 0 {
		return fmt.Sprintf("%d", used)
	}
	return fmt.Sprintf("%d/%d", used, limit)
}

func unlimited(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%g", v)
}

func unlimitedInt(v int64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
