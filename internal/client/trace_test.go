package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gallery/internal/obs/trace"
)

func attrValue(s trace.SpanData, key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestRetryAttemptsAreSiblingSpans: each attempt of a retried request must
// be its own child span under the caller's span — siblings annotated with
// the attempt number and the backoff that preceded them — and each attempt
// must carry a fresh traceparent (same trace, new span ID) on the wire.
func TestRetryAttemptsAreSiblingSpans(t *testing.T) {
	var (
		mu      sync.Mutex
		parents []string
		calls   int
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		parents = append(parents, r.Header.Get("traceparent"))
		n := calls
		calls++
		mu.Unlock()
		if n < 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte("blob-bytes"))
	}))
	defer ts.Close()

	tr := trace.New(trace.Options{Service: "caller", Sampler: trace.Always()})
	ctx, root := tr.StartRoot(context.Background(), "caller", "")

	c := NewWith(ts.URL, Options{Retries: 2, Sleep: func(time.Duration) {}})
	blob, err := c.FetchBlobCtx(ctx, "inst-1")
	if err != nil {
		t.Fatalf("fetch after transient 500s: %v", err)
	}
	if string(blob) != "blob-bytes" {
		t.Fatalf("blob = %q", blob)
	}
	root.End()

	d, ok := tr.Store().Get(root.TraceIDString())
	if !ok {
		t.Fatal("caller trace not recorded")
	}
	if len(d.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(d.Roots))
	}
	var attempts []trace.SpanData
	for _, n := range d.Roots[0].Children {
		if n.Span.Name == "client.request" {
			attempts = append(attempts, n.Span)
		}
	}
	if len(attempts) != 3 {
		t.Fatalf("got %d client.request spans, want 3 (2 failures + success)", len(attempts))
	}
	rootSpan := d.Roots[0].Span
	for i, s := range attempts {
		if s.ParentID != rootSpan.SpanID {
			t.Fatalf("attempt %d parent = %s, want sibling under caller span %s", i, s.ParentID, rootSpan.SpanID)
		}
		if got, _ := attrValue(s, "attempt"); got != []string{"0", "1", "2"}[i] {
			t.Fatalf("attempt %d annotated as %q", i, got)
		}
		if _, hasBackoff := attrValue(s, "backoff"); hasBackoff != (i > 0) {
			t.Fatalf("attempt %d backoff annotation presence = %v", i, hasBackoff)
		}
		status, _ := attrValue(s, "http.status")
		if want := []string{"500", "500", "200"}[i]; status != want {
			t.Fatalf("attempt %d http.status = %q, want %q", i, status, want)
		}
	}
	// Failed attempts carry the error; the final one is clean.
	if attempts[0].Error == "" || attempts[1].Error == "" || attempts[2].Error != "" {
		t.Fatalf("attempt errors = %q %q %q", attempts[0].Error, attempts[1].Error, attempts[2].Error)
	}

	// On the wire: every attempt propagated the same trace ID but its own
	// span ID, so the server parents each attempt separately.
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for i, h := range parents {
		tid, sid, sampled, err := trace.ParseTraceparent(h)
		if err != nil || !sampled {
			t.Fatalf("attempt %d traceparent %q: sampled=%v err=%v", i, h, sampled, err)
		}
		if tid.String() != root.TraceIDString() {
			t.Fatalf("attempt %d propagated trace %s, want %s", i, tid, root.TraceIDString())
		}
		if seen[sid.String()] {
			t.Fatalf("attempt %d reused span ID %s", i, sid)
		}
		seen[sid.String()] = true
	}
}

// TestUntracedContextSendsNoTraceparent: without a span in the context the
// client must not invent one.
func TestUntracedContextSendsNoTraceparent(t *testing.T) {
	var header string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header = r.Header.Get("traceparent")
		w.Write([]byte("x"))
	}))
	defer ts.Close()

	c := New(ts.URL, ts.Client())
	if _, err := c.FetchBlob("inst-1"); err != nil {
		t.Fatal(err)
	}
	if header != "" {
		t.Fatalf("untraced request sent traceparent %q", header)
	}
}
