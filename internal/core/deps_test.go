package core

import (
	"errors"
	"testing"

	"gallery/internal/uuid"
)

// figure5 builds the exact dependency graph of paper Figure 5:
// X and Y depend on A; A depends on B and C. Majors are seeded so display
// versions match the figures: A=4, X=7, Y=8, B=2, C=3.
type figure5 struct {
	h             *harness
	a, b, c, x, y *Model
}

func buildFigure5(t *testing.T) *figure5 {
	t.Helper()
	h := newHarness(t)
	reg := func(base string, major int, ups ...uuid.UUID) *Model {
		m, err := h.g.RegisterModel(ModelSpec{
			BaseVersionID: base,
			Project:       "marketplace",
			InitialMajor:  major,
			Upstreams:     ups,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b := reg("model_B", 2)
	c := reg("model_C", 3)
	a := reg("model_A", 4, b.ID, c.ID)
	x := reg("model_X", 7, a.ID)
	y := reg("model_Y", 8, a.ID)
	return &figure5{h: h, a: a, b: b, c: c, x: x, y: y}
}

func (f *figure5) version(t *testing.T, m *Model) string {
	t.Helper()
	v, err := f.h.g.LatestVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	return v.String()
}

func (f *figure5) prodVersion(t *testing.T, m *Model) string {
	t.Helper()
	v, err := f.h.g.ProductionVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	return v.String()
}

func TestFigure5GraphShape(t *testing.T) {
	f := buildFigure5(t)
	ups, err := f.h.g.Upstreams(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("A upstreams = %v", ups)
	}
	down, err := f.h.g.Downstreams(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 2 {
		t.Fatalf("A downstreams = %v", down)
	}
	trans, err := f.h.g.TransitiveDownstreams(f.b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 3 { // A, X, Y
		t.Fatalf("B transitive downstreams = %v", trans)
	}
	// Initial versions per Figure 5.
	for m, want := range map[*Model]string{f.a: "4.0", f.b: "2.0", f.c: "3.0", f.x: "7.0", f.y: "8.0"} {
		if got := f.version(t, m); got != want {
			t.Fatalf("%s initial version = %s, want %s", m.BaseVersionID, got, want)
		}
	}
}

// TestDependencyFigure6 reproduces paper Figure 6: updating Model B's
// instance from 2.0 to 2.1 triggers version updates for all of B's
// downstream models (A, X, Y) *without* changing their production
// versions. (Experiment E5.)
func TestDependencyFigure6(t *testing.T) {
	f := buildFigure5(t)
	f.h.upload(t, f.b, "sf", []byte("b-retrained"))

	if got := f.version(t, f.b); got != "2.1" {
		t.Fatalf("B version = %s, want 2.1", got)
	}
	// B's own retrain is its new production version.
	if got := f.prodVersion(t, f.b); got != "2.1" {
		t.Fatalf("B production = %s, want 2.1", got)
	}
	// Downstream latest versions bumped...
	for m, want := range map[*Model]string{f.a: "4.1", f.x: "7.1", f.y: "8.1"} {
		if got := f.version(t, m); got != want {
			t.Fatalf("%s latest = %s, want %s", m.BaseVersionID, got, want)
		}
	}
	// ...but their production versions are untouched until the owner opts in.
	for m, want := range map[*Model]string{f.a: "4.0", f.x: "7.0", f.y: "8.0"} {
		if got := f.prodVersion(t, m); got != want {
			t.Fatalf("%s production = %s, want %s (no auto-promotion)", m.BaseVersionID, got, want)
		}
	}
	// C is not downstream of B: untouched entirely.
	if got := f.version(t, f.c); got != "3.0" {
		t.Fatalf("C version = %s, want 3.0", got)
	}
	// The dep_update records carry their trigger.
	hist, err := f.h.g.VersionHistory(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	last := hist[len(hist)-1]
	if last.Cause != CauseDepUpdate || last.TriggeredBy != f.b.ID {
		t.Fatalf("A's new version: cause=%s triggeredBy=%s", last.Cause, last.TriggeredBy)
	}
	// The owner of A can choose to upgrade (paper: "can choose to
	// upgrade to the new model version").
	if err := f.h.g.Promote(last.ID); err != nil {
		t.Fatal(err)
	}
	if got := f.prodVersion(t, f.a); got != "4.1" {
		t.Fatalf("A production after promote = %s", got)
	}
}

// TestDependencyFigure7 reproduces paper Figure 7: adding Model D as a new
// dependency of Model A bumps A to 4.2 and its downstreams X and Y to 7.2
// and 8.2. (Experiment E5.)
func TestDependencyFigure7(t *testing.T) {
	f := buildFigure5(t)
	// First the Figure 6 step so versions sit at x.1.
	f.h.upload(t, f.b, "sf", []byte("b-retrained"))

	d, err := f.h.g.RegisterModel(ModelSpec{BaseVersionID: "model_D", InitialMajor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.h.g.AddDependency(f.a.ID, d.ID); err != nil {
		t.Fatal(err)
	}

	for m, want := range map[*Model]string{f.a: "4.2", f.x: "7.2", f.y: "8.2"} {
		if got := f.version(t, m); got != want {
			t.Fatalf("%s after adding D = %s, want %s", m.BaseVersionID, got, want)
		}
	}
	ups, err := f.h.g.Upstreams(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 3 {
		t.Fatalf("A upstreams after add = %v", ups)
	}
	hist, _ := f.h.g.VersionHistory(f.a.ID)
	if hist[len(hist)-1].Cause != CauseDepAdded {
		t.Fatalf("A's new version cause = %s", hist[len(hist)-1].Cause)
	}
}

func TestRemoveDependency(t *testing.T) {
	f := buildFigure5(t)
	if err := f.h.g.RemoveDependency(f.a.ID, f.c.ID); err != nil {
		t.Fatal(err)
	}
	ups, err := f.h.g.Upstreams(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0] != f.b.ID {
		t.Fatalf("A upstreams after removal = %v", ups)
	}
	// Removal also versions A and propagates.
	if got := f.version(t, f.a); got != "4.1" {
		t.Fatalf("A after removal = %s", got)
	}
	if got := f.version(t, f.x); got != "7.1" {
		t.Fatalf("X after removal = %s", got)
	}
	// C's update no longer touches A.
	f.h.upload(t, f.c, "sf", []byte("c-new"))
	if got := f.version(t, f.a); got != "4.1" {
		t.Fatalf("A bumped by removed dependency: %s", got)
	}
}

func TestRemoveAbsentDependency(t *testing.T) {
	f := buildFigure5(t)
	if err := f.h.g.RemoveDependency(f.b.ID, f.c.ID); err == nil {
		t.Fatal("removing a non-existent edge succeeded")
	}
}

func TestCycleRejected(t *testing.T) {
	f := buildFigure5(t)
	// B -> X would close the loop X -> A -> B.
	err := f.h.g.AddDependency(f.b.ID, f.x.ID)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
	// Self-dependency.
	if err := f.h.g.AddDependency(f.a.ID, f.a.ID); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("self-edge err = %v", err)
	}
	// Direct two-node cycle.
	if err := f.h.g.AddDependency(f.b.ID, f.a.ID); !errors.Is(err, ErrCycle) {
		t.Fatalf("2-cycle err = %v", err)
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	f := buildFigure5(t)
	if err := f.h.g.AddDependency(f.x.ID, f.b.ID); err != nil {
		t.Fatal(err) // new edge is fine
	}
	if err := f.h.g.AddDependency(f.x.ID, f.b.ID); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

// TestDiamondPropagationCountsOnce: B's update reaches X both directly
// (X->B added here) and through A; X must get exactly one new version.
func TestDiamondPropagationCountsOnce(t *testing.T) {
	f := buildFigure5(t)
	if err := f.h.g.AddDependency(f.x.ID, f.b.ID); err != nil {
		t.Fatal(err)
	}
	before, _ := f.h.g.VersionHistory(f.x.ID)
	f.h.upload(t, f.b, "sf", []byte("b2"))
	after, _ := f.h.g.VersionHistory(f.x.ID)
	if len(after)-len(before) != 1 {
		t.Fatalf("X gained %d versions from one B update, want 1", len(after)-len(before))
	}
}

func TestPromoteUnknownVersion(t *testing.T) {
	f := buildFigure5(t)
	if err := f.h.g.Promote(uuid.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPromoteIdempotent(t *testing.T) {
	f := buildFigure5(t)
	v, err := f.h.g.ProductionVersion(f.a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.h.g.Promote(v.ID); err != nil {
		t.Fatal(err)
	}
	// Still exactly one production version.
	if got := f.prodVersion(t, f.a); got != v.String() {
		t.Fatalf("production changed: %s", got)
	}
}
