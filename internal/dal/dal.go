// Package dal implements Gallery's unified data access layer.
//
// The paper (§3.5) accesses model storage through one DAL that combines a
// relational store for metadata/metrics with a blob store for model
// binaries, plus a cache on the blob read path. Its central consistency
// rule: "we always write model blobs first and only write the model
// metadata after the model blobs are successfully stored." A crash between
// the two writes can only leave an orphaned blob — invisible to the system
// and collectable by GC — never metadata pointing at a missing blob.
//
// Blob-first ordering opens one hazard of its own: between the blob write
// and the metadata insert the blob is indistinguishable from an orphan, so
// a concurrently running CollectOrphans could reap it and leave exactly
// the dangling metadata the ordering exists to prevent. The DAL closes
// that window with a pin protocol: writers pin the location before the
// blob write and release it after the metadata insert, and the orphan
// scan skips pinned locations. Callers that write blobs outside
// InsertWithBlob (e.g. multi-row batches) use Pin/Unpin directly.
//
// This package reproduces that rule, the cached read path (with
// per-location singleflight so concurrent misses issue one backend
// fetch), and the orphan collector, and (for the write-ordering ablation)
// also exposes the unsafe metadata-first ordering so the experiment in
// DESIGN.md A3 can count the dangling references it produces.
package dal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/cache"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
)

// ErrDanglingMetadata reports metadata whose blob is missing — the failure
// mode blob-first ordering exists to prevent.
var ErrDanglingMetadata = errors.New("dal: metadata references a missing blob")

// BlobRef declares that rows of Table reference blob locations in LocField.
// The orphan collector uses these declarations to compute reachability.
type BlobRef struct {
	Table    string
	LocField string
}

// Options configures a DAL.
type Options struct {
	// CacheBytes bounds the blob read cache; 0 disables caching
	// (the cache ablation's off arm).
	CacheBytes int64
	// Refs lists every table/field pair that stores blob locations.
	Refs []BlobRef
	// Obs receives DAL metrics; nil uses obs.Default.
	Obs *obs.Registry
}

// inflightGet is one in-progress backend fetch that concurrent misses on
// the same location wait on instead of issuing their own.
type inflightGet struct {
	done chan struct{}
	data []byte
	err  error
}

// DAL is the data access layer. It is safe for concurrent use.
type DAL struct {
	meta  *relstore.Store
	blobs *blobstore.Store
	cache *cache.Cache
	refs  []BlobRef

	mu      sync.Mutex
	pinned  map[string]int          // location -> pin count
	flights map[string]*inflightGet // location -> in-progress fetch

	// testAfterBlobPut, when set by tests, runs in InsertWithBlob between
	// the blob write and the metadata insert — the GC-race window.
	testAfterBlobPut func()

	cBlobPuts    *obs.Counter
	cBlobGets    *obs.Counter
	cCacheHits   *obs.Counter
	cCacheMisses *obs.Counter
	cCoalesced   *obs.Counter
	cGCRuns      *obs.Counter
	cGCReclaimed *obs.Counter
	gPinned      *obs.Gauge
	hGetSeconds  *obs.Histogram
}

// New assembles a DAL over the given stores.
func New(meta *relstore.Store, blobs *blobstore.Store, opts Options) *DAL {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default
	}
	c := cache.New(opts.CacheBytes)
	d := &DAL{
		meta:    meta,
		blobs:   blobs,
		cache:   c,
		refs:    opts.Refs,
		pinned:  make(map[string]int),
		flights: make(map[string]*inflightGet),

		cBlobPuts:    reg.Counter("dal_blob_puts_total"),
		cBlobGets:    reg.Counter("dal_blob_gets_total"),
		cCacheHits:   reg.Counter("dal_cache_hits_total"),
		cCacheMisses: reg.Counter("dal_cache_misses_total"),
		cCoalesced:   reg.Counter("dal_blob_get_coalesced_total"),
		cGCRuns:      reg.Counter("dal_gc_runs_total"),
		cGCReclaimed: reg.Counter("dal_gc_reclaimed_total"),
		gPinned:      reg.Gauge("dal_pinned_locations"),
		hGetSeconds:  reg.Histogram("dal_blob_get_seconds", obs.LatencyBuckets),
	}
	reg.GaugeFunc("dal_cache_bytes", func() float64 { return float64(c.Stats().Bytes) })
	reg.GaugeFunc("dal_cache_hit_ratio", func() float64 {
		st := c.Stats()
		total := st.Hits + st.Misses
		if total == 0 {
			return 0
		}
		return float64(st.Hits) / float64(total)
	})
	return d
}

// Meta exposes the metadata store for queries.
func (d *DAL) Meta() *relstore.Store { return d.meta }

// Blobs exposes the blob store, mainly for stats in experiments.
func (d *DAL) Blobs() *blobstore.Store { return d.blobs }

// Pin marks location as in-flight: the orphan collector will not reclaim
// it even though no metadata references it yet. Pins nest; each Pin needs
// a matching Unpin. Writers pin before the blob write and unpin after the
// metadata insert (or after the write is abandoned — an unpinned orphan
// is then collectable again, which is the desired outcome).
func (d *DAL) Pin(location string) {
	d.mu.Lock()
	d.pinned[location]++
	d.gPinned.Set(float64(len(d.pinned)))
	d.mu.Unlock()
}

// Unpin releases one Pin of location.
func (d *DAL) Unpin(location string) {
	d.mu.Lock()
	if n := d.pinned[location]; n <= 1 {
		delete(d.pinned, location)
	} else {
		d.pinned[location] = n - 1
	}
	d.gPinned.Set(float64(len(d.pinned)))
	d.mu.Unlock()
}

// isPinned reports whether location is currently pinned by a writer.
func (d *DAL) isPinned(location string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pinned[location] > 0
}

// InsertWithBlob writes blob under blobKey, then inserts row with the
// blob's location in locField — the paper's blob-first ordering. The
// location is pinned for the duration so a concurrent CollectOrphans
// cannot reap the blob inside the write window. If the metadata insert
// fails the blob is left behind as an orphan; it is unreachable and a
// later CollectOrphans reclaims it.
func (d *DAL) InsertWithBlob(table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	return d.InsertWithBlobCtx(context.Background(), table, row, locField, blobKey, blob)
}

// InsertWithBlobCtx is InsertWithBlob with trace attribution: one span for
// the ordered write pair, with blob-put and metadata-insert children.
func (d *DAL) InsertWithBlobCtx(ctx context.Context, table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	ctx, span := trace.Start(ctx, "dal.insert_with_blob")
	loc, err := d.insertWithBlobCtx(ctx, table, row, locField, blobKey, blob)
	span.EndErr(err)
	return loc, err
}

func (d *DAL) insertWithBlobCtx(ctx context.Context, table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	pinLoc := d.blobs.Location(blobKey)
	d.Pin(pinLoc)
	defer d.Unpin(pinLoc)

	loc, err := d.blobs.PutCtx(ctx, blobKey, blob)
	if err != nil {
		return "", fmt.Errorf("dal: blob write failed, nothing recorded: %w", err)
	}
	d.cBlobPuts.Inc()
	if d.testAfterBlobPut != nil {
		d.testAfterBlobPut()
	}
	row = row.Clone()
	row[locField] = relstore.String(loc)
	if err := d.meta.InsertCtx(ctx, table, row); err != nil {
		return "", fmt.Errorf("dal: metadata write failed, blob %s orphaned: %w", blobKey, err)
	}
	return loc, nil
}

// PutBlob writes a blob through the DAL so the write is counted. Callers
// composing their own metadata transaction (e.g. a multi-row batch) must
// Pin the key's location before calling and Unpin after the metadata
// commit, per the pin protocol.
func (d *DAL) PutBlob(key string, blob []byte) (string, error) {
	return d.PutBlobCtx(context.Background(), key, blob)
}

// PutBlobCtx is PutBlob with trace attribution.
func (d *DAL) PutBlobCtx(ctx context.Context, key string, blob []byte) (string, error) {
	loc, err := d.blobs.PutCtx(ctx, key, blob)
	if err != nil {
		return "", err
	}
	d.cBlobPuts.Inc()
	return loc, nil
}

// InsertMetadataFirst is the deliberately unsafe ordering for the A3
// ablation: metadata goes in before the blob, so a blob-write failure
// leaves metadata pointing at nothing.
func (d *DAL) InsertMetadataFirst(table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	loc := d.blobs.Location(blobKey)
	row = row.Clone()
	row[locField] = relstore.String(loc)
	if err := d.meta.Insert(table, row); err != nil {
		return "", err
	}
	if _, err := d.blobs.Put(blobKey, blob); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrDanglingMetadata, loc, err)
	}
	d.cBlobPuts.Inc()
	return loc, nil
}

// GetBlob fetches blob bytes by location through the cache. Concurrent
// misses on the same location coalesce into a single backend fetch: one
// caller populates the cache while the rest wait for its result.
func (d *DAL) GetBlob(location string) ([]byte, error) {
	return d.GetBlobCtx(context.Background(), location)
}

// GetBlobCtx is GetBlob with trace attribution. The span's cache attr
// records which path answered — "hit", "miss" (this caller fetched from
// the backend), or "coalesced" (waited on another caller's fetch) — and
// the read-latency histogram gains an exemplar pointing at the trace.
func (d *DAL) GetBlobCtx(ctx context.Context, location string) ([]byte, error) {
	ctx, span := trace.Start(ctx, "dal.get_blob")
	start := time.Now()
	defer func() { d.hGetSeconds.ObserveSinceExemplar(start, span.TraceIDString()) }()
	d.cBlobGets.Inc()

	if data, ok := d.cache.Get(location); ok {
		d.cCacheHits.Inc()
		if span != nil {
			span.Annotate("cache", "hit")
			span.End()
		}
		return data, nil
	}
	d.cCacheMisses.Inc()

	d.mu.Lock()
	if f, ok := d.flights[location]; ok {
		d.mu.Unlock()
		d.cCoalesced.Inc()
		if span != nil {
			span.Annotate("cache", "coalesced")
		}
		<-f.done
		if f.err != nil {
			span.EndErr(f.err)
			return nil, f.err
		}
		cp := make([]byte, len(f.data))
		copy(cp, f.data)
		span.End()
		return cp, nil
	}
	f := &inflightGet{done: make(chan struct{})}
	d.flights[location] = f
	d.mu.Unlock()

	if span != nil {
		span.Annotate("cache", "miss")
	}
	data, err := d.blobs.GetCtx(ctx, location)
	if err == nil {
		d.cache.Put(location, data)
	}
	f.data, f.err = data, err
	d.mu.Lock()
	delete(d.flights, location)
	d.mu.Unlock()
	close(f.done)
	span.EndErr(err)
	return data, err
}

// DeleteBlob removes a blob and its cache entry.
func (d *DAL) DeleteBlob(location string) error {
	d.cache.Remove(location)
	return d.blobs.Delete(location)
}

// CacheStats reports blob-cache effectiveness.
func (d *DAL) CacheStats() cache.Stats { return d.cache.Stats() }

// referenced returns the set of blob locations reachable from metadata.
func (d *DAL) referenced() (map[string]bool, error) {
	refs := make(map[string]bool)
	for _, r := range d.refs {
		rows, err := d.meta.Select(relstore.Query{Table: r.Table})
		if err != nil {
			return nil, fmt.Errorf("dal: scan %s for blob refs: %w", r.Table, err)
		}
		for _, row := range rows {
			if v, ok := row[r.LocField]; ok && v.Kind == relstore.KindString && v.Str != "" {
				refs[v.Str] = true
			}
		}
	}
	return refs, nil
}

// Orphans lists blob locations present in the blob store but referenced by
// no metadata row. Pinned locations — writes in flight between blob put
// and metadata insert — are never reported.
//
// The check order is load-bearing: blob keys are listed first, pins are
// checked second, and metadata is scanned last. Writers pin before the
// blob write and unpin after the metadata insert, so any blob visible in
// the key listing is either still pinned when we look, or its metadata
// insert has already completed and the later metadata scan will see it.
// Scanning metadata first would let a write that committed in between
// look like an orphan.
func (d *DAL) Orphans() ([]string, error) {
	var candidates []string
	for _, key := range d.blobs.Keys() {
		loc := d.blobs.Location(key)
		if d.isPinned(loc) {
			continue
		}
		candidates = append(candidates, loc)
	}
	refs, err := d.referenced()
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, loc := range candidates {
		if !refs[loc] {
			orphans = append(orphans, loc)
		}
	}
	return orphans, nil
}

// CollectOrphans deletes all orphaned blobs and returns how many it
// reclaimed. Each delete re-checks the pin table under the DAL lock so a
// writer that re-puts an orphaned key mid-collection cannot lose its blob:
// either the writer pins first and the delete is skipped, or the delete
// lands first and the writer's subsequent Put recreates the blob.
func (d *DAL) CollectOrphans() (int, error) {
	d.cGCRuns.Inc()
	orphans, err := d.Orphans()
	if err != nil {
		return 0, err
	}
	reclaimed := 0
	for _, loc := range orphans {
		d.mu.Lock()
		if d.pinned[loc] > 0 {
			d.mu.Unlock()
			continue
		}
		d.cache.Remove(loc)
		err := d.blobs.Delete(loc)
		d.mu.Unlock()
		if err != nil {
			return reclaimed, fmt.Errorf("dal: collect %s: %w", loc, err)
		}
		reclaimed++
		d.cGCReclaimed.Inc()
	}
	return reclaimed, nil
}

// Dangling lists metadata rows whose blob location cannot be fetched — the
// corruption class that blob-first ordering prevents. Experiments use it to
// verify the invariant (zero under blob-first) and to quantify the
// metadata-first ablation.
func (d *DAL) Dangling() ([]string, error) {
	var dangling []string
	for _, r := range d.refs {
		rows, err := d.meta.Select(relstore.Query{Table: r.Table})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			v, ok := row[r.LocField]
			if !ok || v.Kind != relstore.KindString || v.Str == "" {
				continue
			}
			if _, err := d.blobs.Get(v.Str); err != nil {
				dangling = append(dangling, v.Str)
			}
		}
	}
	return dangling, nil
}
