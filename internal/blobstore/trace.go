package blobstore

import (
	"context"

	"gallery/internal/obs/trace"
)

// Ctx variants of the blob operations, adding trace attribution. The
// store's latency model simulates a remote object store; the span carries
// the simulated charge separately (sim_latency) so a trace read on a
// laptop still attributes where S3/HDFS time *would* go in production —
// when Sleep is on, the simulated charge is also real wall time inside
// the span.

// GetCtx is Get with a child span annotated with payload size and the
// latency model's simulated charge.
func (s *Store) GetCtx(ctx context.Context, location string) ([]byte, error) {
	_, span := trace.Start(ctx, "blobstore.get")
	data, err := s.Get(location)
	if span != nil {
		span.AnnotateInt("bytes", int64(len(data)))
		span.AnnotateDuration("sim_latency", s.opts.Latency.cost(len(data)))
	}
	span.EndErr(err)
	return data, err
}

// PutCtx is Put with a child span; the simulated charge covers writing
// every replica, matching what charge records in Stats.
func (s *Store) PutCtx(ctx context.Context, key string, data []byte) (string, error) {
	_, span := trace.Start(ctx, "blobstore.put")
	loc, err := s.Put(key, data)
	if span != nil {
		span.AnnotateInt("bytes", int64(len(data)))
		span.AnnotateDuration("sim_latency", s.opts.Latency.cost(len(data)*len(s.replicas)))
	}
	span.EndErr(err)
	return loc, err
}
