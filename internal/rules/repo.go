package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gallery/internal/clock"
)

// Repo is the versioned rule repository. The paper stores rules in a Git
// repo to get version control, peer review, and a validation gate for free
// (§3.7.2); this is the same model as a content-hashed commit log: every
// commit captures the complete rule set, validation runs before anything
// lands, and any historical state can be checked out again by hash.
type Repo struct {
	mu      sync.Mutex
	clk     clock.Clock
	commits []Commit
	// head is the active rule set, by rule UUID.
	head map[string]*Rule
}

// Commit is one immutable repository state.
type Commit struct {
	Hash    string
	Author  string
	Message string
	Time    time.Time
	// Rules is the full rule set as of this commit, by UUID.
	Rules map[string]*Rule
}

// ErrNoCommit reports an unknown commit hash.
var ErrNoCommit = errors.New("rules: no such commit")

// NewRepo returns an empty repository.
func NewRepo(clk clock.Clock) *Repo {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Repo{clk: clk, head: make(map[string]*Rule)}
}

// Commit validates and lands a change: upserts the given rules and deletes
// the listed UUIDs, producing a new immutable commit. Any invalid rule
// aborts the whole commit — the validation gate that keeps bad rules out
// of production.
func (r *Repo) Commit(author, message string, upserts []*Rule, deletes []string) (Commit, error) {
	for _, rule := range upserts {
		if err := rule.Validate(); err != nil {
			return Commit{}, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]*Rule, len(r.head)+len(upserts))
	for id, rule := range r.head {
		next[id] = rule
	}
	for _, id := range deletes {
		if _, ok := next[id]; !ok {
			return Commit{}, fmt.Errorf("rules: cannot delete unknown rule %s", id)
		}
		delete(next, id)
	}
	for _, rule := range upserts {
		cp := *rule
		next[rule.UUID] = &cp
	}
	c := Commit{
		Author:  author,
		Message: message,
		Time:    r.clk.Now(),
		Rules:   next,
	}
	hash, err := hashCommit(c, r.lastHashLocked())
	if err != nil {
		return Commit{}, err
	}
	c.Hash = hash
	r.commits = append(r.commits, c)
	r.head = next
	return c, nil
}

func (r *Repo) lastHashLocked() string {
	if len(r.commits) == 0 {
		return ""
	}
	return r.commits[len(r.commits)-1].Hash
}

// hashCommit derives a stable content hash chained to the parent, like a
// Git commit id.
func hashCommit(c Commit, parent string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "parent %s\nauthor %s\nmessage %s\ntime %d\n",
		parent, c.Author, c.Message, c.Time.UnixNano())
	ids := make([]string, 0, len(c.Rules))
	for id := range c.Rules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b, err := c.Rules[id].Canonical()
		if err != nil {
			return "", fmt.Errorf("rules: hash rule %s: %w", id, err)
		}
		h.Write([]byte(id))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Active returns the current rule set as a sorted slice.
func (r *Repo) Active() []*Rule {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortRules(r.head)
}

// Get returns the active version of one rule.
func (r *Repo) Get(id string) (*Rule, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rule, ok := r.head[id]
	if !ok {
		return nil, false
	}
	cp := *rule
	return &cp, true
}

// ActiveByTeam returns the current rules belonging to one team, the unit
// of ownership in the paper's repo layout ("their allocated directory").
func (r *Repo) ActiveByTeam(team string) []*Rule {
	r.mu.Lock()
	defer r.mu.Unlock()
	subset := make(map[string]*Rule)
	for id, rule := range r.head {
		if rule.Team == team {
			subset[id] = rule
		}
	}
	return sortRules(subset)
}

// History returns all commits, oldest first.
func (r *Repo) History() []Commit {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Commit, len(r.commits))
	copy(out, r.commits)
	return out
}

// Rollback makes the rule set of an earlier commit active again, recorded
// as a new commit (history is never rewritten).
func (r *Repo) Rollback(hash, author string) (Commit, error) {
	r.mu.Lock()
	var target *Commit
	for i := range r.commits {
		if r.commits[i].Hash == hash {
			target = &r.commits[i]
			break
		}
	}
	r.mu.Unlock()
	if target == nil {
		return Commit{}, fmt.Errorf("%w: %s", ErrNoCommit, hash)
	}
	rules := make([]*Rule, 0, len(target.Rules))
	for _, rule := range target.Rules {
		rules = append(rules, rule)
	}
	// Compute deletions: anything active now but absent at the target.
	r.mu.Lock()
	var deletes []string
	for id := range r.head {
		if _, ok := target.Rules[id]; !ok {
			deletes = append(deletes, id)
		}
	}
	r.mu.Unlock()
	return r.Commit(author, "rollback to "+hash[:12], rules, deletes)
}

func sortRules(m map[string]*Rule) []*Rule {
	out := make([]*Rule, 0, len(m))
	for _, rule := range m {
		cp := *rule
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out
}
