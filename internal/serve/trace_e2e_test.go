package serve_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/server"
	"gallery/internal/uuid"
)

// flattenSpans walks a trace's span tree into a name-indexed map.
func flattenSpans(roots []*trace.Node) map[string]trace.SpanData {
	out := map[string]trace.SpanData{}
	var walk func(ns []*trace.Node)
	walk = func(ns []*trace.Node) {
		for _, n := range ns {
			out[n.Span.Name] = n.Span
			walk(n.Children)
		}
	}
	walk(roots)
	return out
}

// TestCrossProcessTrace drives one cache-miss prediction through the
// serving gateway over real HTTP and checks that it produces ONE trace,
// retrievable from the registry's /v1/debug/traces, whose spans come from
// both processes with correct parent links:
//
//	galleryserve: POST /v1/predict/{model} → serve.predict → serve.load
//	              → client.request (×2: production lookup + blob fetch)
//	galleryd:     GET routes (remote-forced by the propagated traceparent,
//	              despite its own Never sampler) → core/dal/blobstore spans
//
// The gateway's spans reach the registry via the HTTP exporter posting to
// the registry's ingest endpoint — exactly the production wiring of
// cmd/galleryserve.
func TestCrossProcessTrace(t *testing.T) {
	// Registry tier: sampler Never, so every galleryd span in the final
	// trace exists only because the gateway's traceparent forced it.
	gdTracer := trace.New(trace.Options{Service: "galleryd", Sampler: trace.Never()})
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWith(reg, nil, nil, server.Options{Obs: obs.NewRegistry(), Tracer: gdTracer})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client())

	m, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-demand",
		Project:       "marketplace",
		Name:          "demand",
		Domain:        "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "baseline", City: "sf", Blob: blob})
	if err != nil {
		t.Fatal(err)
	}

	// Serving tier: always-sample, exporting kept traces to the registry.
	exporter := trace.NewHTTPExporter(ts.URL+"/v1/debug/traces", ts.Client())
	t.Cleanup(exporter.Close)
	gwTracer := trace.New(trace.Options{
		Service:  "galleryserve",
		Sampler:  trace.Always(),
		Exporter: exporter,
	})
	gw := serve.New(c, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry(), Tracer: gwTracer})
	t.Cleanup(gw.Close)
	gwTS := httptest.NewServer(serve.NewHandler(gw))
	t.Cleanup(gwTS.Close)
	gc := client.New(gwTS.URL, gwTS.Client())

	resp, err := gc.Predict(m.ID, api.PredictRequest{History: []float64{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.InstanceID != inst.ID {
		t.Fatalf("prediction served by %s, want %s", resp.InstanceID, inst.ID)
	}

	// The gateway's root span ends (and exports) after the response is
	// written, so poll until its trace appears locally, then flush the
	// exporter and poll the registry's buffer for the merged view.
	var tid string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && tid == "" {
		if sums := gwTracer.Store().Summaries(0); len(sums) > 0 {
			tid = sums[len(sums)-1].TraceID
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if tid == "" {
		t.Fatal("gateway recorded no trace for the predict request")
	}
	exporter.Flush()

	wantSpans := []string{
		// galleryserve half.
		"POST /v1/predict/{model}",
		"serve.predict",
		"serve.load",
		"client.request",
		// galleryd half.
		"GET /v1/models/{id}/production",
		"GET /v1/instances/{id}/blob",
		"core.production_version",
		"core.fetch_blob",
		"dal.get_blob",
		"blobstore.get",
	}
	var (
		d  trace.Detail
		ok bool
	)
	for time.Now().Before(deadline) {
		d, ok = gdTracer.Store().Get(tid)
		if ok && len(d.Summary.Services) == 2 && hasAll(flattenSpans(d.Roots), wantSpans) {
			break
		}
		ok = false
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatalf("registry never assembled the merged trace %s: %+v", tid, d.Summary)
	}

	spans := flattenSpans(d.Roots)
	if got := d.Summary.Services; len(got) != 2 {
		t.Fatalf("services = %v, want galleryd and galleryserve", got)
	}
	if d.Summary.Errors != 0 {
		t.Fatalf("trace has %d errored spans", d.Summary.Errors)
	}

	// Parent links inside the gateway process.
	gwRoot := spans["POST /v1/predict/{model}"]
	if gwRoot.Service != "galleryserve" || gwRoot.ParentID != "" {
		t.Fatalf("gateway root = %+v, want parentless galleryserve span", gwRoot)
	}
	if spans["serve.predict"].ParentID != gwRoot.SpanID {
		t.Fatal("serve.predict must parent on the gateway's HTTP root")
	}
	if spans["serve.load"].ParentID != spans["serve.predict"].SpanID {
		t.Fatal("serve.load must parent on serve.predict")
	}
	if spans["client.request"].ParentID != spans["serve.load"].SpanID {
		t.Fatal("client.request must parent on serve.load")
	}

	// Across the process boundary: each registry HTTP root's parent must
	// be one of the gateway's client.request spans (there are two — the
	// map keeps one per name, so collect parents from the tree directly).
	clientSpanIDs := map[string]bool{}
	var collect func(ns []*trace.Node)
	collect = func(ns []*trace.Node) {
		for _, n := range ns {
			if n.Span.Name == "client.request" {
				clientSpanIDs[n.Span.SpanID] = true
			}
			collect(n.Children)
		}
	}
	collect(d.Roots)
	for _, route := range []string{"GET /v1/models/{id}/production", "GET /v1/instances/{id}/blob"} {
		s := spans[route]
		if s.Service != "galleryd" {
			t.Fatalf("%s served by %q, want galleryd", route, s.Service)
		}
		if !clientSpanIDs[s.ParentID] {
			t.Fatalf("%s parent %s is not one of the gateway's client.request spans", route, s.ParentID)
		}
	}

	// And inside the registry process.
	if spans["core.fetch_blob"].ParentID != spans["GET /v1/instances/{id}/blob"].SpanID {
		t.Fatal("core.fetch_blob must parent on the registry's blob route span")
	}
	if spans["dal.get_blob"].ParentID != spans["core.fetch_blob"].SpanID {
		t.Fatal("dal.get_blob must parent on core.fetch_blob")
	}
	if spans["blobstore.get"].ParentID != spans["dal.get_blob"].SpanID {
		t.Fatal("blobstore.get must parent on dal.get_blob")
	}

	// The merged trace is what the debug endpoint serves to galleryctl.
	raw, err := c.DebugTrace(tid)
	if err != nil || len(raw) == 0 {
		t.Fatalf("DebugTrace(%s): err=%v len=%d", tid, err, len(raw))
	}
}

func hasAll(spans map[string]trace.SpanData, names []string) bool {
	for _, n := range names {
		if _, ok := spans[n]; !ok {
			return false
		}
	}
	return true
}
