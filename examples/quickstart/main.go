// Quickstart walks the canonical Gallery user workflow of paper §4.1
// (Listings 3–5) against an in-process registry: train a model, serialize
// it, upload it with metadata, record a performance metric, search for it
// by constraints, and fetch it back for serving.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/relstore"
)

func main() {
	// Gallery over in-memory stores. A real deployment would point at
	// galleryd; the API is the same.
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Train a forecasting model on synthetic demand — the stand-in for
	// "pipeline.fit(train_df)" in Listing 3.
	start := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	data := forecast.Generate(forecast.CityConfig{
		Name: "new_york", Base: 800, DailyAmp: 250, WeeklyAmp: 80, NoiseStd: 30, Seed: 1,
	}, start, time.Hour, 24*45)
	model := &forecast.LinearAR{Lags: 24}
	if err := model.Train(data[:24*40]); err != nil {
		log.Fatal(err)
	}
	blob, err := forecast.Encode(model) // "model_content = serialize(model_object)"
	if err != nil {
		log.Fatal(err)
	}

	// Listing 3: create the Gallery model and upload the instance.
	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "supply_rejection",
		Project:       "example-project",
		Name:          "random_forest",
		Owner:         "quickstart",
		Domain:        "UberX",
	})
	if err != nil {
		log.Fatal(err)
	}
	in, err := reg.UploadInstance(core.InstanceSpec{
		ModelID:      m.ID,
		Name:         "Random Forest",
		City:         "New York City",
		Framework:    "gallery-forecast",
		TrainingData: "synthetic://new_york/v1",
		CodePointer:  "examples/quickstart",
		Seed:         1,
	}, blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded instance %s\n  base version: %s\n  blob at:      %s\n",
		in.ID, in.BaseVersionID, in.BlobLocation)

	// Listing 4: record validation performance.
	met, err := forecast.Backtest(&forecast.LinearAR{Lags: 24}, data, 24*40)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.InsertMetrics(in.ID, core.ScopeValidation, met.AsMap()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation metrics: mape=%.2f%% mae=%.1f bias=%.4f r2=%.3f\n",
		met.MAPE, met.MAE, met.Bias, met.R2)

	// Listing 5: search by project + name + metric constraint.
	results, err := reg.SearchInstances(core.InstanceFilter{
		Project:     "example-project",
		Name:        "Random Forest",
		MetricName:  "bias",
		MetricOp:    relstore.OpLt,
		MetricValue: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search matched %d instance(s)\n", len(results))

	// Fetch the blob back and serve a prediction with it.
	servedBlob, err := reg.FetchBlob(results[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	served, err := forecast.Decode(servedBlob)
	if err != nil {
		log.Fatal(err)
	}
	next := served.Forecast(forecast.Context{
		History: data.Values(),
		Time:    data[len(data)-1].T.Add(time.Hour),
	})
	fmt.Printf("served model %q forecasts next-hour demand: %.1f\n", served.Name(), next)

	// Reproducibility audit (paper §6.2).
	rep, err := reg.Completeness(in.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reproducibility completeness: %.0f%% (missing: %v)\n", rep.Score*100, rep.Missing)
}
