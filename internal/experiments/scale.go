package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/uuid"
)

// Experiment E7 — the paper's scale claim: "Gallery is managing more than
// 1 million model instances" (§4). The experiment registers tiers of
// instances (sharded by city like Marketplace Forecasting) and measures
// save throughput and the latency of the operations that must stay fast at
// scale: indexed metadata search, point fetch, and lineage traversal.

// ScaleResult is one tier's measurements.
type ScaleResult struct {
	Instances      int
	SaveThroughput float64 // instances/second
	SearchLatency  time.Duration
	SearchResults  int
	FetchLatency   time.Duration
	LineageLatency time.Duration
	LineageLen     int
}

// Scale runs the tier sweep. Blobs are small placeholders: the claim under
// test is metadata-layer scalability, blob bytes live off-path in the blob
// store.
func Scale(tiers []int) ([]ScaleResult, error) {
	var out []ScaleResult
	for _, n := range tiers {
		r, err := scaleTier(n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func scaleTier(n int) (ScaleResult, error) {
	env := mustEnv(int64(7000 + n))
	res := ScaleResult{Instances: n}

	const cities = 400 // "hundreds of cities across the globe" (§1)
	models := make([]*core.Model, cities)
	for c := 0; c < cities; c++ {
		m, err := env.Reg.RegisterModel(core.ModelSpec{
			BaseVersionID: fmt.Sprintf("demand_city%03d", c),
			Project:       "marketplace", Name: "demand_forecaster", Domain: "UberX",
		})
		if err != nil {
			return res, err
		}
		models[c] = m
	}

	blob := []byte("tiny placeholder model blob")
	start := time.Now()
	var probe uuid.UUID
	for i := 0; i < n; i++ {
		env.Clock.Advance(time.Second)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: models[i%cities].ID,
			Name:    "linear_regression",
			City:    fmt.Sprintf("city%03d", i%cities),
		}, blob)
		if err != nil {
			return res, err
		}
		if i == n/2 {
			probe = in.ID
		}
	}
	res.SaveThroughput = float64(n) / time.Since(start).Seconds()

	// Indexed metadata search: all instances of one city.
	start = time.Now()
	found, err := env.Reg.SearchInstances(core.InstanceFilter{City: "city123", Limit: 100})
	if err != nil {
		return res, err
	}
	res.SearchLatency = time.Since(start)
	res.SearchResults = len(found)

	// Point fetch (metadata + blob through the cache).
	start = time.Now()
	if _, err := env.Reg.FetchBlob(probe); err != nil {
		return res, err
	}
	res.FetchLatency = time.Since(start)

	// Lineage traversal of one base version id.
	start = time.Now()
	lineage, err := env.Reg.Lineage("demand_city123")
	if err != nil {
		return res, err
	}
	res.LineageLatency = time.Since(start)
	res.LineageLen = len(lineage)
	return res, nil
}

// FormatScale renders the tier table.
func FormatScale(rs []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-16s %-14s %-16s\n",
		"instances", "save inst/s", "search (city)", "fetch", "lineage (base)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-12d %-14.0f %-16s %-14s %-16s\n",
			r.Instances, r.SaveThroughput,
			fmt.Sprintf("%v/%d hits", r.SearchLatency.Round(time.Microsecond), r.SearchResults),
			r.FetchLatency.Round(time.Microsecond),
			fmt.Sprintf("%v/%d inst", r.LineageLatency.Round(time.Microsecond), r.LineageLen))
	}
	b.WriteString("paper claim: Gallery manages >1M model instances under Michelangelo (§4)\n")
	return b.String()
}
