package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram(LatencyBuckets)

	// Empty trace IDs never become exemplars.
	h.ObserveExemplar(99, "")
	if got := h.Exemplars(); len(got) != 0 {
		t.Fatalf("untraced observation retained: %+v", got)
	}

	// The slots retain the largest traced observations, largest first.
	for i, v := range []float64{5, 1, 3, 2, 4, 0.5, 6} {
		h.ObserveExemplar(v, fmt.Sprintf("trace-%d", i))
	}
	got := h.Exemplars()
	if len(got) != exemplarSlots {
		t.Fatalf("retained %d exemplars, want %d", len(got), exemplarSlots)
	}
	wantVals := []float64{6, 5, 4, 3}
	for i, ex := range got {
		if ex.Value != wantVals[i] {
			t.Fatalf("exemplars = %+v, want values %v", got, wantVals)
		}
	}
	if got[0].TraceID != "trace-6" {
		t.Fatalf("largest exemplar trace = %q, want trace-6", got[0].TraceID)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d; exemplar path must still observe", h.Count())
	}
}

func TestHistogramExemplarsConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ObserveExemplar(float64(i%50), fmt.Sprintf("t-%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	got := h.Exemplars()
	if len(got) != exemplarSlots {
		t.Fatalf("retained %d exemplars, want %d", len(got), exemplarSlots)
	}
	for _, ex := range got {
		if ex.Value != 49 {
			t.Fatalf("exemplar %v survived, want only the max value 49", ex)
		}
	}
}

func TestSnapshotCarriesExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", LatencyBuckets)
	h.ObserveExemplar(1.25, "deadbeef")
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Histograms map[string]struct {
			Exemplars []Exemplar `json:"exemplars"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	hs, ok := snap.Histograms["req_seconds"]
	if !ok || len(hs.Exemplars) != 1 || hs.Exemplars[0].TraceID != "deadbeef" {
		t.Fatalf("snapshot exemplars = %+v, want [deadbeef]", hs)
	}
}
