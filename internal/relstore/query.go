package relstore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gallery/internal/btree"
	"gallery/internal/obs/trace"
)

// Op is a constraint operator. The set mirrors what Gallery's model search
// API exposes (paper Listing 5: equal, smaller_than, ...).
type Op uint8

// Constraint operators.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix   // string prefix match
	OpContains // string substring match
	OpIn       // equals any of Values
)

// String names the operator, matching the wire names used by the service.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "equal"
	case OpNe:
		return "not_equal"
	case OpLt:
		return "smaller_than"
	case OpLe:
		return "smaller_or_equal"
	case OpGt:
		return "greater_than"
	case OpGe:
		return "greater_or_equal"
	case OpPrefix:
		return "prefix"
	case OpContains:
		return "contains"
	case OpIn:
		return "in"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp converts a wire operator name to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "equal":
		return OpEq, nil
	case "not_equal":
		return OpNe, nil
	case "smaller_than":
		return OpLt, nil
	case "smaller_or_equal":
		return OpLe, nil
	case "greater_than":
		return OpGt, nil
	case "greater_or_equal":
		return OpGe, nil
	case "prefix":
		return OpPrefix, nil
	case "contains":
		return OpContains, nil
	case "in":
		return OpIn, nil
	default:
		return 0, fmt.Errorf("relstore: unknown operator %q", s)
	}
}

// Constraint is one field/operator/value predicate.
type Constraint struct {
	Field  string
	Op     Op
	Value  Value
	Values []Value // OpIn only
}

// Query selects rows from a table.
type Query struct {
	Table string
	Where []Constraint
	// OrderBy sorts results by the named column; empty keeps primary-key
	// order (or index-scan order when an index drives the query).
	OrderBy string
	Desc    bool
	Limit   int // 0 means unlimited
	Offset  int
	// ForceScan bypasses index selection, used by the search-index
	// ablation (DESIGN.md A5).
	ForceScan bool
}

// Explain reports how a query executed.
type Explain struct {
	// Index is the column whose secondary index drove the scan, or ""
	// for a full table scan.
	Index string
	// Ordered reports that the scan streamed rows already in the
	// requested ORDER BY order — either the ORDER BY column's own index
	// drove the scan, or the driving constraint shares its column with
	// ORDER BY — so no sort ran and Limit could stop the scan early.
	// Always false when the query has no ORDER BY (result order is then
	// scan order, and no sort would have run anyway).
	Ordered bool
	// Scanned counts rows (or index postings) examined.
	Scanned int
	// Matched counts rows that satisfied all constraints, before
	// offset/limit.
	Matched int
}

// matches reports whether row satisfies c.
func (c Constraint) matches(row Row) bool {
	v, ok := row[c.Field]
	if !ok {
		v = Value{} // treat absent as null
	}
	switch c.Op {
	case OpEq:
		return !v.IsNull() && Equal(v, c.Value)
	case OpNe:
		// SQL three-valued logic: NULL <> x is unknown, so a null (or
		// absent) field matches no comparison operator — not_equal
		// included. Rows lacking the field are excluded, consistent with
		// every other operator here and with the search API the paper's
		// Listing 5 mirrors.
		return !v.IsNull() && !Equal(v, c.Value)
	case OpLt:
		return !v.IsNull() && Compare(v, c.Value) < 0
	case OpLe:
		return !v.IsNull() && Compare(v, c.Value) <= 0
	case OpGt:
		return !v.IsNull() && Compare(v, c.Value) > 0
	case OpGe:
		return !v.IsNull() && Compare(v, c.Value) >= 0
	case OpPrefix:
		return v.Kind == KindString && c.Value.Kind == KindString &&
			strings.HasPrefix(v.Str, c.Value.Str)
	case OpContains:
		return v.Kind == KindString && c.Value.Kind == KindString &&
			strings.Contains(v.Str, c.Value.Str)
	case OpIn:
		if v.IsNull() {
			return false
		}
		for _, cand := range c.Values {
			if Equal(v, cand) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// indexable reports whether the constraint can seed an index scan and how
// selective it is likely to be (lower is better).
func (c Constraint) indexable() (rank int, ok bool) {
	switch c.Op {
	case OpEq:
		return 0, true
	case OpPrefix:
		return 1, true
	case OpGe, OpGt, OpLe, OpLt:
		return 2, true
	default:
		return 0, false
	}
}

// Select runs a query and returns row copies.
func (s *Store) Select(q Query) ([]Row, error) {
	rows, _, err := s.SelectExplain(q)
	return rows, err
}

// SelectCtx is Select with trace attribution: a per-table query span
// annotated with how the query executed (index vs scan) and the rows it
// returned.
func (s *Store) SelectCtx(ctx context.Context, q Query) ([]Row, error) {
	_, span := trace.Start(ctx, "relstore.select")
	rows, ex, err := s.SelectExplain(q)
	if span != nil {
		span.Annotate("table", q.Table)
		span.Annotate("index", ex.Index)
		if ex.Ordered {
			span.Annotate("order", "streamed")
		} else if q.OrderBy != "" {
			span.Annotate("order", "sorted")
		}
		span.AnnotateInt("scanned", int64(ex.Scanned))
		span.AnnotateInt("rows", int64(len(rows)))
	}
	span.EndErr(err)
	return rows, err
}

// SelectExplain runs a query and also reports how it executed.
func (s *Store) SelectExplain(q Query) ([]Row, Explain, error) {
	s.countOp("select", q.Table)
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[q.Table]
	if !ok {
		return nil, Explain{}, fmt.Errorf("%w: %s", ErrNoTable, q.Table)
	}
	var ex Explain
	driver := -1 // index into q.Where of the constraint driving an index scan
	if !q.ForceScan {
		bestRank := 99
		for i, c := range q.Where {
			rank, can := c.indexable()
			if !can {
				continue
			}
			if _, hasIdx := t.indexes[c.Field]; !hasIdx {
				continue
			}
			// Lower rank wins; on a rank tie prefer the constraint whose
			// column is also the ORDER BY column, since that scan streams
			// results in order and skips the sort entirely.
			if rank < bestRank ||
				(rank == bestRank && driver >= 0 &&
					c.Field == q.OrderBy && q.Where[driver].Field != q.OrderBy) {
				bestRank, driver = rank, i
			}
		}
	}

	// streamed reports that the scan will emit rows already in result
	// order, which makes the post-scan sort redundant and lets Limit stop
	// the scan early. Three scans qualify:
	//
	//   - an index-driven scan whose constraint column is the ORDER BY
	//     column (index order IS the requested order; descending requests
	//     walk the index downward),
	//   - an index-driven scan with no ORDER BY (result order is defined
	//     as scan order),
	//   - the ordered-index path below, and full scans with no ORDER BY
	//     (primary-key order, walked in either direction).
	//
	// This is what keeps "newest instances first" queries fast at the
	// paper's million-instance scale: the registry's dominant search shape
	// (filter + ORDER BY created DESC LIMIT n) touches n postings, not
	// every match.
	streamed := driver >= 0 && (q.OrderBy == "" || q.OrderBy == q.Where[driver].Field)

	// Ordered-index path: when no constraint drives the scan but the
	// ORDER BY column has an index over a non-nullable column, stream the
	// index in order. (Nullable columns are skipped: their null rows are
	// absent from the index, so it cannot supply the full result set.
	// The driver path above has no such concern — range and equality
	// constraints exclude nulls anyway.)
	ordered := false
	if driver < 0 && !q.ForceScan && q.OrderBy != "" {
		if _, hasIdx := t.indexes[q.OrderBy]; hasIdx {
			if col, ok := t.schema.col(q.OrderBy); ok && !col.Nullable {
				ordered = true
				streamed = true
			}
		}
	}
	if driver < 0 && !ordered && q.OrderBy == "" {
		streamed = true // full scan in primary-key order (either direction)
	}

	var matched []Row
	visit := func(row Row) bool {
		ex.Scanned++
		for _, c := range q.Where {
			if !c.matches(row) {
				return true
			}
		}
		ex.Matched++
		matched = append(matched, row)
		// Early termination: only safe when scan order is result order.
		if streamed && q.Limit > 0 && len(matched) >= q.Offset+q.Limit {
			return false
		}
		return true
	}

	switch {
	case driver >= 0:
		c := q.Where[driver]
		ex.Index = c.Field
		ex.Ordered = streamed && q.OrderBy != ""
		if streamed && q.Desc {
			t.scanIndexDesc(c, visit)
		} else {
			t.scanIndex(c, visit)
		}
	case ordered:
		ex.Index = q.OrderBy
		ex.Ordered = true
		idx := t.indexes[q.OrderBy]
		emit := func(it btree.Item) bool {
			return visit(t.rows[it.(indexEntry).pk])
		}
		if q.Desc {
			idx.Descend(emit)
		} else {
			idx.Ascend(emit)
		}
	default:
		t.scanAll(q.Desc && q.OrderBy == "", visit)
	}

	// Order, then page (skipped when the scan already streamed rows in
	// result order). Tie-break note: a streamed descending scan yields
	// (value desc, pk desc) within equal values, while the sort path's
	// stable sort preserves scan order; order among equal ORDER BY values
	// is unspecified either way.
	if q.OrderBy != "" && !streamed {
		col := q.OrderBy
		sort.SliceStable(matched, func(i, j int) bool {
			c := Compare(matched[i][col], matched[j][col])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			matched = nil
		} else {
			matched = matched[q.Offset:]
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}

	out := make([]Row, len(matched))
	for i, r := range matched {
		out[i] = r.Clone()
	}
	return out, ex, nil
}

// scanAll visits every row in primary-key order (descending when desc).
func (t *table) scanAll(desc bool, visit func(Row) bool) {
	emit := func(it btree.Item) bool {
		return visit(t.rows[string(it.(pkItem))])
	}
	if desc {
		t.pks.Descend(emit)
	} else {
		t.pks.Ascend(emit)
	}
}

// Index-scan bounds use two sentinels around a value's posting run:
// {v, pk: ""} sorts before every real {v, pk} posting (primary keys are
// non-empty) and {v, max: true} sorts after them all. Both let the scan
// seek directly to a run boundary instead of filtering through it — on
// OpGt in particular, the scan lands past the equal-value run in
// O(log n) no matter how many rows share the boundary value.

// scanIndex visits rows via the secondary index on c.Field, bounded by
// c, in ascending (value, pk) order.
func (t *table) scanIndex(c Constraint, visit func(Row) bool) {
	idx := t.indexes[c.Field]
	emit := func(it btree.Item) bool {
		return visit(t.rows[it.(indexEntry).pk])
	}
	switch c.Op {
	case OpEq:
		idx.AscendRange(indexEntry{v: c.Value}, indexEntry{v: c.Value, max: true}, emit)
	case OpPrefix:
		idx.AscendGreaterOrEqual(indexEntry{v: c.Value}, func(it btree.Item) bool {
			e := it.(indexEntry)
			if e.v.Kind != KindString || !strings.HasPrefix(e.v.Str, c.Value.Str) {
				return false
			}
			return visit(t.rows[e.pk])
		})
	case OpGe:
		idx.AscendGreaterOrEqual(indexEntry{v: c.Value}, emit)
	case OpGt:
		idx.AscendGreaterOrEqual(indexEntry{v: c.Value, max: true}, emit)
	case OpLe:
		idx.AscendRange(nil, indexEntry{v: c.Value, max: true}, emit)
	case OpLt:
		idx.AscendRange(nil, indexEntry{v: c.Value}, emit)
	}
}

// scanIndexDesc is scanIndex walking the index downward, so descending
// ORDER BY requests on the constraint column stream without a sort.
func (t *table) scanIndexDesc(c Constraint, visit func(Row) bool) {
	idx := t.indexes[c.Field]
	emit := func(it btree.Item) bool {
		return visit(t.rows[it.(indexEntry).pk])
	}
	switch c.Op {
	case OpEq:
		idx.DescendLessOrEqual(indexEntry{v: c.Value, max: true}, func(it btree.Item) bool {
			e := it.(indexEntry)
			if !Equal(e.v, c.Value) {
				return false
			}
			return visit(t.rows[e.pk])
		})
	case OpPrefix:
		t.descendPrefix(idx, c, visit)
	case OpGe, OpGt:
		idx.Descend(func(it btree.Item) bool {
			e := it.(indexEntry)
			cmp := Compare(e.v, c.Value)
			if cmp < 0 || (cmp == 0 && c.Op == OpGt) {
				return false
			}
			return visit(t.rows[e.pk])
		})
	case OpLe:
		idx.DescendLessOrEqual(indexEntry{v: c.Value, max: true}, emit)
	case OpLt:
		idx.DescendLessOrEqual(indexEntry{v: c.Value}, emit)
	}
}

// descendPrefix walks prefix matches downward, seeking to the prefix's
// upper bound first when one exists.
func (t *table) descendPrefix(idx *btree.Tree, c Constraint, visit func(Row) bool) {
	stop := func(it btree.Item) bool {
		e := it.(indexEntry)
		if e.v.Kind != KindString || !strings.HasPrefix(e.v.Str, c.Value.Str) {
			return false
		}
		return visit(t.rows[e.pk])
	}
	if succ, ok := prefixSuccessor(c.Value.Str); ok {
		idx.DescendLessOrEqual(indexEntry{v: String(succ)}, stop)
		return
	}
	// Prefix is all 0xff bytes: no string upper bound exists. Walk from
	// the top, skipping non-string postings (every other kind sorts above
	// strings), then stop at the first string without the prefix.
	idx.Descend(func(it btree.Item) bool {
		e := it.(indexEntry)
		if e.v.Kind != KindString {
			return true
		}
		return stop(it)
	})
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix, by incrementing the last incrementable byte.
// ok is false when the prefix is empty or all 0xff.
func prefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
