package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry.
//
// The JSON snapshot at /v1/debug/metrics is for humans and the CLI; this
// writer is for machines — a standard Prometheus server pointed at
// /v1/debug/metrics/prom scrapes every Gallery metric, vectors included.
// The writer intentionally does NOT build on Snapshot(): snapshots omit
// empty buckets to keep JSON small, but the exposition format requires
// every histogram bucket, cumulative, ending at le="+Inf". It reads the
// live metric structures instead.
//
// Registry metric names are "flat": labels are pre-rendered into the map
// key (base{k="v"}). The writer parses them back apart so series sharing
// a base name are grouped into one family with a single HELP/TYPE pair,
// as the spec requires. Base names and label keys are sanitized to the
// legal charsets; label values are escaped per the spec.

// promSeries is one parsed flat metric name.
type promSeries struct {
	labels string // canonical re-rendered {k="v",...} or ""
	c      *Counter
	g      float64
	h      *Histogram
}

type promFamily struct {
	kind   string // "counter" | "gauge" | "histogram"
	series map[string]*promSeries
}

// WriteProm renders every registered metric in Prometheus text exposition
// format 0.0.4.
func (r *Registry) WriteProm(w io.Writer) error {
	fams := make(map[string]*promFamily)
	addRaw := func(base, labels, kind string) *promSeries {
		f := fams[base]
		if f == nil {
			f = &promFamily{kind: kind, series: make(map[string]*promSeries)}
			fams[base] = f
		} else if f.kind != kind {
			// A base name claimed by two metric kinds cannot be exposed as
			// one family; first kind wins, the clashing series is dropped.
			return nil
		}
		s := &promSeries{labels: labels}
		f.series[base+labels] = s
		return s
	}
	add := func(flat, kind string) *promSeries {
		base, labels := promParseName(flat)
		return addRaw(base, labels, kind)
	}
	// Vector children skip the flat-name parse: their raw label values are
	// escaped directly, so values the flat rendering cannot round-trip
	// (embedded quotes) still expose correctly.
	vecLabels := func(c *vecCore, k vecKey) string {
		var b strings.Builder
		b.WriteByte('{')
		b.WriteString(promSanitizeLabel(c.labels[0]))
		b.WriteString(`="`)
		b.WriteString(promEscape(k.a))
		b.WriteByte('"')
		if len(c.labels) == 2 {
			b.WriteByte(',')
			b.WriteString(promSanitizeLabel(c.labels[1]))
			b.WriteString(`="`)
			b.WriteString(promEscape(k.b))
			b.WriteByte('"')
		}
		b.WriteByte('}')
		return b.String()
	}

	r.mu.RLock()
	for name, c := range r.counters {
		if s := add(name, "counter"); s != nil {
			s.c = c
		}
	}
	for name, g := range r.gauges {
		if s := add(name, "gauge"); s != nil {
			s.g = g.Value()
		}
	}
	for name, fn := range r.gaugeFuncs {
		if s := add(name, "gauge"); s != nil {
			s.g = fn()
		}
	}
	for name, h := range r.hists {
		if s := add(name, "histogram"); s != nil {
			s.h = h
		}
	}
	for _, v := range r.counterVecs {
		base := promSanitizeName(v.base)
		v.mu.RLock()
		for k, c := range v.children {
			if s := addRaw(base, vecLabels(&v.vecCore, k), "counter"); s != nil {
				s.c = c
			}
		}
		if v.overflow != nil {
			if s := addRaw(base, vecLabels(&v.vecCore, v.overflowKey()), "counter"); s != nil {
				s.c = v.overflow
			}
		}
		v.mu.RUnlock()
	}
	for _, v := range r.histVecs {
		base := promSanitizeName(v.base)
		v.mu.RLock()
		for k, h := range v.children {
			if s := addRaw(base, vecLabels(&v.vecCore, k), "histogram"); s != nil {
				s.h = h
			}
		}
		if v.overflow != nil {
			if s := addRaw(base, vecLabels(&v.vecCore, v.overflowKey()), "histogram"); s != nil {
				s.h = v.overflow
			}
		}
		v.mu.RUnlock()
	}
	r.mu.RUnlock()

	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)

	var b strings.Builder
	for _, base := range bases {
		f := fams[base]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(base)
		b.WriteString(" Gallery ")
		b.WriteString(f.kind)
		b.WriteString(" ")
		b.WriteString(base)
		b.WriteString(".\n# TYPE ")
		b.WriteString(base)
		b.WriteString(" ")
		b.WriteString(f.kind)
		b.WriteString("\n")
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case "counter":
				b.WriteString(base)
				b.WriteString(s.labels)
				b.WriteString(" ")
				b.WriteString(strconv.FormatInt(s.c.Value(), 10))
				b.WriteString("\n")
			case "gauge":
				b.WriteString(base)
				b.WriteString(s.labels)
				b.WriteString(" ")
				b.WriteString(promFloat(s.g))
				b.WriteString("\n")
			case "histogram":
				promHistogram(&b, base, s.labels, s.h)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// promHistogram emits every bucket cumulatively (empty ones included),
// ending at le="+Inf", followed by _sum and _count.
func promHistogram(b *strings.Builder, base, labels string, h *Histogram) {
	// labels is "" or "{k=\"v\",...}"; the le label is appended inside.
	var cum int64
	writeBucket := func(le string, n int64) {
		b.WriteString(base)
		b.WriteString("_bucket{")
		if labels != "" {
			b.WriteString(labels[1 : len(labels)-1])
			b.WriteString(",")
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(n, 10))
		b.WriteString("\n")
	}
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(promFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket("+Inf", cum)
	b.WriteString(base)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteString(" ")
	b.WriteString(promFloat(h.Sum()))
	b.WriteString("\n")
	b.WriteString(base)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteString(" ")
	b.WriteString(strconv.FormatInt(h.Count(), 10))
	b.WriteString("\n")
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promParseName splits a flat registry name (base{k="v",...} or plain
// base) into a sanitized base and canonically re-rendered, escaped label
// block. The base never contains '{', so the first brace starts labels.
func promParseName(flat string) (base, labels string) {
	i := strings.IndexByte(flat, '{')
	if i < 0 {
		return promSanitizeName(flat), ""
	}
	base = promSanitizeName(flat[:i])
	body := flat[i:]
	if len(body) < 2 || body[len(body)-1] != '}' {
		return base, ""
	}
	body = body[1 : len(body)-1]

	// Quote-aware split of k="v" pairs; values may contain ',', '{', '}'.
	var b strings.Builder
	b.Grow(len(body) + 8)
	b.WriteByte('{')
	first := true
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		key := promSanitizeLabel(body[:eq])
		rest := body[eq+2:]
		end := -1
		for j := 0; j < len(rest); j++ {
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			break
		}
		val := rest[:end]
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(key)
		b.WriteString(`="`)
		b.WriteString(promEscape(val))
		b.WriteByte('"')
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	if first {
		return base, ""
	}
	b.WriteByte('}')
	return base, b.String()
}

// promSanitizeName maps a base name into [a-zA-Z_:][a-zA-Z0-9_:]*.
func promSanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(s); i++ {
		if !promNameByte(s[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	out := []byte(s)
	for i := range out {
		if !promNameByte(out[i], i == 0) {
			out[i] = '_'
		}
	}
	return string(out)
}

func promNameByte(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// promSanitizeLabel maps a label key into [a-zA-Z_][a-zA-Z0-9_]*.
func promSanitizeLabel(s string) string {
	if s == "" {
		return "_"
	}
	out := []byte(s)
	for i := range out {
		c := out[i]
		legal := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !legal {
			out[i] = '_'
		}
	}
	return string(out)
}

// promEscape escapes a label value per the exposition spec.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// ValidateExposition parses a Prometheus text exposition payload and
// returns the first spec violation found, or nil. It checks name and
// label charsets, HELP/TYPE presence and ordering per family, sample
// value syntax, and histogram bucket structure (le parses, counts are
// cumulative, the series ends at le="+Inf", and _count matches it).
// Shared by the obs golden test and both daemons' endpoint tests.
func ValidateExposition(payload []byte) error {
	type histState struct {
		lastLe  float64
		lastN   int64
		infSeen bool
		infN    int64
		countN  int64
		hasCnt  bool
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	hists := map[string]*histState{} // keyed by base + labels-minus-le

	lines := strings.Split(string(payload), "\n")
	for ln, line := range lines {
		where := func(msg string) error { return fmt.Errorf("line %d: %s: %q", ln+1, msg, line) }
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				return where("malformed comment")
			}
			switch parts[1] {
			case "HELP":
				if !promValidName(parts[2]) {
					return where("bad family name in HELP")
				}
				if helpSeen[parts[2]] {
					return where("duplicate HELP")
				}
				helpSeen[parts[2]] = true
			case "TYPE":
				if len(parts) < 4 {
					return where("TYPE missing kind")
				}
				if !promValidName(parts[2]) {
					return where("bad family name in TYPE")
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return where("unknown TYPE kind")
				}
				if _, dup := typeSeen[parts[2]]; dup {
					return where("duplicate TYPE")
				}
				typeSeen[parts[2]] = parts[3]
			default:
				// other comments are permitted
			}
			continue
		}

		name, labels, value, err := promParseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v: %q", ln+1, err, line)
		}
		if !promValidName(name) {
			return where("bad metric name")
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typeSeen[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if !helpSeen[base] {
			return where("sample before HELP for its family")
		}
		kind, ok := typeSeen[base]
		if !ok {
			return where("sample before TYPE for its family")
		}

		if kind != "histogram" {
			continue
		}
		le, rest := promTakeLe(labels)
		key := base + "|" + rest
		st := hists[key]
		if st == nil {
			st = &histState{lastLe: -1e308}
			hists[key] = st
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return where("histogram bucket without le label")
			}
			n := int64(value)
			if le == "+Inf" {
				st.infSeen = true
				st.infN = n
				if n < st.lastN {
					return where("+Inf bucket smaller than previous bucket")
				}
				break
			}
			lv, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return where("unparseable le bound")
			}
			if st.infSeen {
				return where("finite bucket after +Inf")
			}
			if lv <= st.lastLe {
				return where("le bounds not ascending")
			}
			if n < st.lastN {
				return where("bucket counts not cumulative")
			}
			st.lastLe = lv
			st.lastN = n
		case strings.HasSuffix(name, "_count"):
			st.countN = int64(value)
			st.hasCnt = true
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		if st.hasCnt && st.countN != st.infN {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, st.countN, st.infN)
		}
	}
	return nil
}

// promParseSample splits "name{labels} value" (labels optional),
// validating label syntax and parsing the value.
func promParseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
		end := promLabelsEnd(rest)
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block")
		}
		labels = rest[:end+1]
		rest = rest[end+1:]
		if err := promCheckLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample missing value")
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", "", 0, fmt.Errorf("sample has %d trailing fields", len(fields))
	}
	value, err = strconv.ParseFloat(fields[0], 64) // accepts +Inf/-Inf/NaN
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable sample value")
	}
	return name, labels, value, nil
}

// promLabelsEnd finds the index of the closing '}' of a label block that
// starts at index 0, honoring quoted values and escapes.
func promLabelsEnd(s string) int {
	inQ := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case '}':
			if !inQ {
				return i
			}
		}
	}
	return -1
}

// promCheckLabels validates a {k="v",...} block.
func promCheckLabels(block string) error {
	body := block[1 : len(block)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("label missing '='")
		}
		key := body[:eq]
		if !promValidLabelKey(key) {
			return fmt.Errorf("bad label key %q", key)
		}
		if eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("label value not quoted")
		}
		rest := body[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("dangling escape in label value")
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("illegal escape \\%c", rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		body = rest[end+1:]
		if body == "" {
			break
		}
		if body[0] != ',' {
			return fmt.Errorf("expected ',' between labels")
		}
		body = body[1:]
	}
	return nil
}

func promValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !promNameByte(s[i], i == 0) {
			return false
		}
	}
	return true
}

func promValidLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// promTakeLe strips the le label from a block, returning its value and
// the remaining canonicalized block (series identity without le).
func promTakeLe(block string) (le, rest string) {
	if block == "" {
		return "", ""
	}
	body := block[1 : len(block)-1]
	var parts []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		key := body[:eq]
		after := body[eq+2:]
		end := -1
		for i := 0; i < len(after); i++ {
			if after[i] == '\\' {
				i++
				continue
			}
			if after[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		val := after[:end]
		if key == "le" {
			le = val
		} else {
			parts = append(parts, key+`="`+val+`"`)
		}
		body = strings.TrimPrefix(after[end+1:], ",")
	}
	if len(parts) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(parts, ",") + "}"
}
