// Package client is the Go client for the Gallery service — the
// reproduction's equivalent of the paper's language-specific Thrift
// clients (§4.1). Every method maps to one service call.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"gallery/internal/api"
)

// Client talks to one Gallery service endpoint.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the service at base (e.g.
// "http://localhost:8440"). httpClient may be nil for the default.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// APIError carries the service's error body and status code.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gallery: %d: %s", e.Status, e.Msg)
}

// do issues one request; out may be nil for statusless calls.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{Status: resp.StatusCode, Msg: e.Error}
		}
		return &APIError{Status: resp.StatusCode, Msg: string(data)}
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// RegisterModel creates a model.
func (c *Client) RegisterModel(req api.RegisterModelRequest) (api.Model, error) {
	var m api.Model
	err := c.do("POST", "/v1/models", req, &m)
	return m, err
}

// GetModel fetches a model by id.
func (c *Client) GetModel(id string) (api.Model, error) {
	var m api.Model
	err := c.do("GET", "/v1/models/"+id, nil, &m)
	return m, err
}

// ModelsByBase lists model records under a base version id.
func (c *Client) ModelsByBase(base string) ([]api.Model, error) {
	var ms []api.Model
	err := c.do("GET", "/v1/models?base_version_id="+url.QueryEscape(base), nil, &ms)
	return ms, err
}

// EvolveModel registers a model's successor.
func (c *Client) EvolveModel(id, description string) (api.Model, error) {
	var m api.Model
	err := c.do("POST", "/v1/models/"+id+"/evolve", api.EvolveModelRequest{Description: description}, &m)
	return m, err
}

// Evolution returns a model's prev/next chain.
func (c *Client) Evolution(id string) ([]api.Model, error) {
	var ms []api.Model
	err := c.do("GET", "/v1/models/"+id+"/evolution", nil, &ms)
	return ms, err
}

// DeprecateModel flags a model.
func (c *Client) DeprecateModel(id string) error {
	return c.do("POST", "/v1/models/"+id+"/deprecate", struct{}{}, nil)
}

// VersionHistory returns a model's version records.
func (c *Client) VersionHistory(id string) ([]api.VersionRecord, error) {
	var vs []api.VersionRecord
	err := c.do("GET", "/v1/models/"+id+"/versions", nil, &vs)
	return vs, err
}

// ProductionVersion returns a model's promoted version.
func (c *Client) ProductionVersion(id string) (api.VersionRecord, error) {
	var v api.VersionRecord
	err := c.do("GET", "/v1/models/"+id+"/production", nil, &v)
	return v, err
}

// Promote makes a version the production version of its model.
func (c *Client) Promote(versionID string) error {
	return c.do("POST", "/v1/versions/"+versionID+"/promote", struct{}{}, nil)
}

// Upstreams lists direct dependencies of a model.
func (c *Client) Upstreams(id string) ([]string, error) {
	var out []string
	err := c.do("GET", "/v1/models/"+id+"/upstreams", nil, &out)
	return out, err
}

// Downstreams lists direct dependents of a model.
func (c *Client) Downstreams(id string) ([]string, error) {
	var out []string
	err := c.do("GET", "/v1/models/"+id+"/downstreams", nil, &out)
	return out, err
}

// AddDependency records that from depends on to.
func (c *Client) AddDependency(from, to string) error {
	return c.do("POST", "/v1/deps", api.DependencyRequest{From: from, To: to}, nil)
}

// RemoveDependency removes the from→to edge.
func (c *Client) RemoveDependency(from, to string) error {
	return c.do("DELETE", "/v1/deps", api.DependencyRequest{From: from, To: to}, nil)
}

// UploadInstance saves a trained model instance with its blob.
func (c *Client) UploadInstance(req api.UploadInstanceRequest) (api.Instance, error) {
	var in api.Instance
	err := c.do("POST", "/v1/instances", req, &in)
	return in, err
}

// GetInstance fetches instance metadata.
func (c *Client) GetInstance(id string) (api.Instance, error) {
	var in api.Instance
	err := c.do("GET", "/v1/instances/"+id, nil, &in)
	return in, err
}

// FetchBlob downloads an instance's serialized model bytes.
func (c *Client) FetchBlob(id string) ([]byte, error) {
	var raw []byte
	err := c.do("GET", "/v1/instances/"+id+"/blob", nil, &raw)
	return raw, err
}

// DeprecateInstance flags an instance.
func (c *Client) DeprecateInstance(id string) error {
	return c.do("POST", "/v1/instances/"+id+"/deprecate", struct{}{}, nil)
}

// InsertMetric records one measurement (paper Listing 4).
func (c *Client) InsertMetric(instanceID, name, scope string, value float64) (api.Metric, error) {
	var m api.Metric
	err := c.do("POST", "/v1/instances/"+instanceID+"/metrics",
		api.InsertMetricRequest{Name: name, Scope: scope, Value: value}, &m)
	return m, err
}

// InsertMetrics records a metrics blob.
func (c *Client) InsertMetrics(instanceID, scope string, values map[string]float64) error {
	return c.do("POST", "/v1/instances/"+instanceID+"/metricset",
		api.InsertMetricsRequest{Scope: scope, Values: values}, nil)
}

// InsertMetricsBlob ships a raw "<metric>:<value>" blob (paper §3.3.3).
func (c *Client) InsertMetricsBlob(instanceID, scope string, blob []byte) error {
	req, err := http.NewRequest("POST",
		c.base+"/v1/instances/"+instanceID+"/metricsblob?scope="+url.QueryEscape(scope),
		bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(resp.Body)
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{Status: resp.StatusCode, Msg: e.Error}
		}
		return &APIError{Status: resp.StatusCode, Msg: string(data)}
	}
	return nil
}

// CheckFleetHealth sweeps a project's instances for drift, skew, and
// metadata completeness.
func (c *Client) CheckFleetHealth(req api.FleetHealthRequest) (api.FleetHealth, error) {
	var rep api.FleetHealth
	err := c.do("POST", "/v1/health/fleet", req, &rep)
	return rep, err
}

// MetricSeries fetches measurements of one metric for an instance.
func (c *Client) MetricSeries(instanceID, name, scope string) ([]api.Metric, error) {
	var ms []api.Metric
	err := c.do("GET", "/v1/instances/"+instanceID+"/metrics?name="+url.QueryEscape(name)+
		"&scope="+url.QueryEscape(scope), nil, &ms)
	return ms, err
}

// Search queries instances (paper Listing 5).
func (c *Client) Search(req api.SearchRequest) ([]api.Instance, error) {
	var ins []api.Instance
	err := c.do("POST", "/v1/search", req, &ins)
	return ins, err
}

// Lineage lists instances under a base version id, oldest first.
func (c *Client) Lineage(base string) ([]api.Instance, error) {
	var ins []api.Instance
	err := c.do("GET", "/v1/lineage/"+url.PathEscape(base), nil, &ins)
	return ins, err
}

// Stats reports store sizes and headline observability numbers.
func (c *Client) Stats() (api.Stats, error) {
	var s api.Stats
	err := c.do("GET", "/v1/stats", nil, &s)
	return s, err
}

// DebugMetrics fetches the server's full metric registry snapshot
// (per-route histograms, storage and rule-engine counters) as raw JSON.
func (c *Client) DebugMetrics() (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do("GET", "/v1/debug/metrics", nil, &raw)
	return raw, err
}

// CommitRules lands rule changes in the repository.
func (c *Client) CommitRules(author, message string, upserts []json.RawMessage, deletes []string) (string, error) {
	var out map[string]string
	err := c.do("POST", "/v1/rules", api.CommitRulesRequest{
		Author: author, Message: message, Upserts: upserts, Deletes: deletes,
	}, &out)
	return out["hash"], err
}

// ListRules returns the active rule set as raw JSON.
func (c *Client) ListRules() (json.RawMessage, error) {
	var raw []byte
	if err := c.do("GET", "/v1/rules", nil, &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// SelectModel triggers a selection rule and returns the champion.
func (c *Client) SelectModel(ruleID string, filter api.SearchRequest) (api.Instance, error) {
	var in api.Instance
	err := c.do("POST", "/v1/rules/"+ruleID+"/select", api.SelectModelRequest{Filter: filter}, &in)
	return in, err
}

// Alerts returns the rule engine's alert log.
func (c *Client) Alerts() ([]api.Alert, error) {
	var out []api.Alert
	err := c.do("GET", "/v1/alerts", nil, &out)
	return out, err
}

// CheckDrift runs a drift check on an instance.
func (c *Client) CheckDrift(instanceID string, req api.DriftRequest) (api.DriftReport, error) {
	var rep api.DriftReport
	err := c.do("POST", "/v1/instances/"+instanceID+"/drift", req, &rep)
	return rep, err
}

// CheckSkew runs a production-skew check on an instance.
func (c *Client) CheckSkew(instanceID string, req api.SkewRequest) (api.SkewReport, error) {
	var rep api.SkewReport
	err := c.do("POST", "/v1/instances/"+instanceID+"/skew", req, &rep)
	return rep, err
}
