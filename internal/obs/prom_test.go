package obs

import (
	"bytes"
	"strings"
	"testing"
)

// populated builds a registry exercising every metric shape the writer
// handles: plain counters/gauges, labelled flat names (including label
// values with braces and spaces, like route patterns), gauge funcs,
// histograms with empty buckets, and both vector kinds with overflow.
func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("plain_total").Add(7)
	r.Counter(Name("http_requests_total", "route", "POST /v1/predict/{model}", "status", "2xx")).Add(3)
	r.Gauge("heap_bytes").Set(12345.5)
	r.GaugeFunc("computed_ratio", func() float64 { return 0.25 })
	h := r.Histogram(Name("http_request_seconds", "route", "GET /v1/serving"), LatencyBuckets)
	h.Observe(0.003)
	h.Observe(42) // overflow bucket
	cv := r.CounterVec("tenant_http_requests_total", []string{"namespace"}, 2)
	cv.With("ads").Add(2)
	cv.With("maps").Inc()
	cv.With("eats").Inc() // over cap -> overflow series
	hv := r.HistogramVec("serve_predict_seconds", []string{"namespace", "model"}, []float64{0.01, 0.1, 1}, 8)
	hv.With2("ads", "ctr").Observe(0.05)
	return r
}

func TestWritePromValid(t *testing.T) {
	r := populatedRegistry()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE plain_total counter",
		"plain_total 7",
		"# TYPE tenant_http_requests_total counter",
		`tenant_http_requests_total{namespace="ads"} 2`,
		`tenant_http_requests_total{namespace="_overflow"} 1`,
		"# TYPE serve_predict_seconds histogram",
		`serve_predict_seconds_bucket{namespace="ads",model="ctr",le="+Inf"} 1`,
		`serve_predict_seconds_count{namespace="ads",model="ctr"} 1`,
		"# TYPE http_request_seconds histogram",
		"# TYPE heap_bytes gauge",
		"heap_bytes 12345.5",
		"computed_ratio 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Every bucket appears, even empty ones: LatencyBuckets has 16 bounds
	// plus +Inf for one series.
	if n := strings.Count(out, "http_request_seconds_bucket{"); n != len(LatencyBuckets)+1 {
		t.Errorf("bucket lines = %d, want %d", n, len(LatencyBuckets)+1)
	}
	// HELP/TYPE appear exactly once per family.
	if n := strings.Count(out, "# TYPE tenant_http_requests_total "); n != 1 {
		t.Errorf("TYPE lines for tenant_http_requests_total = %d", n)
	}
}

func TestWritePromEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	// Vector children carry raw label values, so even quotes survive.
	r.CounterVec("x_total", []string{"k"}, 4).With("quote\"back\\slash\nnl").Inc()
	// Flat names can carry backslashes and newlines in values.
	r.Counter(Name("y_total", "k", "back\\slash\nnl")).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		`x_total{k="quote\"back\\slash\nnl"} 1`,
		`y_total{k="back\\slash\nnl"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in\n%s", want, buf.String())
		}
	}
}

func TestWritePromSanitizesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("weird-name.total", "bad-key", "v")).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid after sanitizing: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `weird_name_total{bad_key="v"} 1`) {
		t.Fatalf("sanitized series missing in\n%s", buf.String())
	}
}

func TestValidateExpositionRejectsBadPayloads(t *testing.T) {
	cases := map[string]string{
		"bad name":           "# HELP 1bad x\n# TYPE 1bad counter\n1bad 1\n",
		"no help":            "# TYPE x counter\nx 1\n",
		"no type":            "# HELP x x\nx 1\n",
		"bad kind":           "# HELP x x\n# TYPE x countre\nx 1\n",
		"bad value":          "# HELP x x\n# TYPE x counter\nx one\n",
		"unquoted label":     "# HELP x x\n# TYPE x counter\nx{k=v} 1\n",
		"bad label key":      "# HELP x x\n# TYPE x counter\nx{0k=\"v\"} 1\n",
		"unterminated block": "# HELP x x\n# TYPE x counter\nx{k=\"v\" 1\n",
		"non-cumulative buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"unsorted le": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 1\n",
		"missing inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n",
		"duplicate type": "# HELP x x\n# TYPE x counter\n# TYPE x counter\nx 1\n",
	}
	for name, payload := range cases {
		if err := ValidateExposition([]byte(payload)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
	good := "# HELP h h\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.15\nh_count 2\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("good histogram rejected: %v", err)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := populatedRegistry()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two writes of the same state differ")
	}
}
