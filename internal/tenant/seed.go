package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Seed is the -token-file format: namespaces and pre-shared tokens to
// install at boot. Applying a seed is idempotent — existing namespaces
// keep their stored quotas and a token whose secret is already known is
// left alone — so daemons can apply the same file on every start.
//
//	{
//	  "namespaces": [
//	    {"name": "maps", "max_models": 100, "max_blob_bytes": 1073741824,
//	     "rate_per_sec": 500, "burst": 1000}
//	  ],
//	  "tokens": [
//	    {"secret": "gal_...", "name": "maps-ci", "namespace": "maps",
//	     "role": "publisher"}
//	  ]
//	}
type Seed struct {
	Namespaces []SeedNamespace `json:"namespaces"`
	Tokens     []SeedToken     `json:"tokens"`
}

// SeedNamespace declares a tenant and its quotas (zero = unlimited).
type SeedNamespace struct {
	Name         string  `json:"name"`
	MaxModels    int64   `json:"max_models"`
	MaxBlobBytes int64   `json:"max_blob_bytes"`
	RatePerSec   float64 `json:"rate_per_sec"`
	Burst        int64   `json:"burst"`
}

// SeedToken declares a pre-shared credential.
type SeedToken struct {
	Secret    string `json:"secret"`
	Name      string `json:"name"`
	Namespace string `json:"namespace"`
	Role      string `json:"role"`
}

// LoadSeed reads a token file.
func LoadSeed(path string) (Seed, error) {
	var s Seed
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("tenant: parse token file %s: %w", path, err)
	}
	return s, nil
}

// ApplySeed installs a seed's namespaces and tokens, skipping whatever
// already exists.
func (m *Manager) ApplySeed(ctx context.Context, s Seed) error {
	for _, ns := range s.Namespaces {
		err := m.CreateNamespace(ctx, Namespace{
			Name:         ns.Name,
			MaxModels:    ns.MaxModels,
			MaxBlobBytes: ns.MaxBlobBytes,
			RatePerSec:   ns.RatePerSec,
			Burst:        ns.Burst,
		})
		if err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, t := range s.Tokens {
		role, err := ParseRole(t.Role)
		if err != nil {
			return err
		}
		ns := t.Namespace
		if ns == "" {
			ns = DefaultNamespace
		}
		if _, err := m.EnsureToken(ctx, t.Secret, ns, t.Name, role); err != nil {
			return err
		}
	}
	return nil
}
