package audit

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
	"gallery/internal/wal"
)

var epoch = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func testLog(t *testing.T, keep int) *Log {
	t.Helper()
	l, err := Open(relstore.NewMemory(), Options{
		Clock: clock.NewMock(epoch),
		UUIDs: uuid.NewSeeded(1),
		Keep:  keep,
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestRecordAndQuery(t *testing.T) {
	l := testLog(t, -1)
	ctx := WithActor(context.Background(), "tester")
	if err := l.Record(ctx, Event{
		Action: ActionPromote, EntityType: EntityInstance, EntityID: "i1", ModelID: "m1",
		Before: "v1.1", After: "v1.2",
	}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := l.Record(context.Background(), Event{
		Action: ActionModelDeprecate, EntityType: EntityModel, EntityID: "m1",
	}); err != nil {
		t.Fatalf("Record: %v", err)
	}

	evs, err := l.Events(Query{Action: ActionPromote})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d promote events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Actor != "tester" {
		t.Errorf("actor = %q, want tester (from context)", ev.Actor)
	}
	if ev.Seq != 1 || ev.Before != "v1.1" || ev.After != "v1.2" {
		t.Errorf("event round-trip mismatch: %+v", ev)
	}

	// The model's timeline includes the instance event via model_id.
	tl, err := l.EntityTimeline("m1", 0)
	if err != nil {
		t.Fatalf("EntityTimeline: %v", err)
	}
	if len(tl) != 2 {
		t.Fatalf("model timeline has %d events, want 2 (instance event joins through model_id)", len(tl))
	}
	if tl[0].Seq != 1 || tl[1].Seq != 2 {
		t.Errorf("timeline out of order: seqs %d, %d", tl[0].Seq, tl[1].Seq)
	}
	if tl[1].Actor != "system" {
		t.Errorf("default actor = %q, want system", tl[1].Actor)
	}
}

func TestRecordRejectsIncompleteEvent(t *testing.T) {
	l := testLog(t, -1)
	if err := l.Record(context.Background(), Event{Action: ActionPromote}); err == nil {
		t.Fatal("Record without entity id should fail")
	}
	if err := l.Record(context.Background(), Event{EntityID: "x"}); err == nil {
		t.Fatal("Record without action should fail")
	}
}

func TestTraceIDFromContext(t *testing.T) {
	tr := trace.New(trace.Options{Service: "test", Sampler: mustSampler(t, "always")})
	ctx, span := tr.StartRoot(context.Background(), "op", "")
	defer span.End()

	l := testLog(t, -1)
	if err := l.Record(ctx, Event{Action: ActionRuleFire, EntityID: "i1"}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	evs, _ := l.Events(Query{})
	if got, want := evs[0].TraceID, span.TraceIDString(); got != want {
		t.Errorf("trace id = %q, want %q", got, want)
	}
}

func mustSampler(t *testing.T, spec string) trace.Sampler {
	t.Helper()
	s, err := trace.ParseSampler(spec)
	if err != nil {
		t.Fatalf("ParseSampler(%q): %v", spec, err)
	}
	return s
}

// Retention: pruning keeps the newest N events per entity, and one
// entity's churn does not evict another's history.
func TestRetentionPerEntity(t *testing.T) {
	l := testLog(t, 10)
	ctx := context.Background()
	if err := l.Record(ctx, Event{Action: ActionModelRegister, EntityID: "quiet"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.Record(ctx, Event{Action: ActionPromote, EntityID: "busy", Detail: fmt.Sprintf("n%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	busy, err := l.Events(Query{EntityID: "busy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(busy) != 10 {
		t.Fatalf("busy entity retained %d events, want 10", len(busy))
	}
	for i, ev := range busy {
		if want := fmt.Sprintf("n%d", 15+i); ev.Detail != want {
			t.Errorf("retained[%d].Detail = %q, want %q (newest must survive)", i, ev.Detail, want)
		}
	}
	quiet, _ := l.Events(Query{EntityID: "quiet"})
	if len(quiet) != 1 {
		t.Fatalf("quiet entity retained %d events, want 1", len(quiet))
	}
	if l.Len() != 11 {
		t.Errorf("table len = %d, want 11", l.Len())
	}
}

// Restart: the WAL replays the trail without duplicates and the sequence
// resumes past the highest recovered event.
func TestRestartRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	store, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	l, err := Open(store, Options{Clock: clock.NewMock(epoch), UUIDs: uuid.NewSeeded(2), Keep: -1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("audit open: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := l.Record(ctx, Event{Action: ActionPromote, EntityID: "e", Detail: fmt.Sprintf("n%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	store2, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer store2.Close()
	l2, err := Open(store2, Options{Clock: clock.NewMock(epoch), UUIDs: uuid.NewSeeded(3), Keep: -1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("audit reopen: %v", err)
	}
	evs, err := l2.Events(Query{EntityID: "e"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("recovered %d events, want 5 (no duplicate replays)", len(evs))
	}
	if err := l2.Record(ctx, Event{Action: ActionPromote, EntityID: "e", Detail: "post"}); err != nil {
		t.Fatal(err)
	}
	evs, _ = l2.Events(Query{EntityID: "e"})
	if got := evs[len(evs)-1].Seq; got != 6 {
		t.Errorf("post-restart seq = %d, want 6 (sequence must resume, not fork)", got)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("timeline reordered after restart: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// Concurrency: emitters racing on one entity never drop an event or
// reorder any single emitter's view of the timeline. Run with -race.
func TestConcurrentEmitters(t *testing.T) {
	const goroutines, each = 8, 50
	l := testLog(t, -1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ev := Event{Action: ActionPromote, EntityID: "shared", Detail: fmt.Sprintf("g%d:%d", g, i)}
				if err := l.Record(context.Background(), ev); err != nil {
					t.Errorf("Record: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	evs, err := l.Events(Query{EntityID: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != goroutines*each {
		t.Fatalf("retained %d events, want %d (no drops)", len(evs), goroutines*each)
	}
	lastPerG := make([]int, goroutines)
	for i := range lastPerG {
		lastPerG[i] = -1
	}
	var prevSeq int64
	for _, ev := range evs {
		if ev.Seq <= prevSeq {
			t.Fatalf("timeline not strictly ordered: seq %d after %d", ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		var g, i int
		if _, err := fmt.Sscanf(ev.Detail, "g%d:%d", &g, &i); err != nil {
			t.Fatalf("bad detail %q", ev.Detail)
		}
		if i != lastPerG[g]+1 {
			t.Fatalf("goroutine %d events reordered: saw %d after %d", g, i, lastPerG[g])
		}
		lastPerG[g] = i
	}
}

func TestEventsTimeWindowAndWhere(t *testing.T) {
	clk := clock.NewMock(epoch)
	l, err := Open(relstore.NewMemory(), Options{Clock: clk, UUIDs: uuid.NewSeeded(4), Keep: -1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := l.Record(ctx, Event{Action: ActionPromote, EntityID: "e", Actor: fmt.Sprintf("a%d", i)}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Hour)
	}
	evs, err := l.Events(Query{Since: epoch.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("since filter kept %d events, want 2", len(evs))
	}
	evs, err = l.Events(Query{Where: []relstore.Constraint{
		{Field: "actor", Op: relstore.OpPrefix, Value: relstore.String("a1")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Actor != "a1" {
		t.Fatalf("raw constraint query got %+v, want single a1 event", evs)
	}
}
