package server

// This file holds the audit-trail and debug-log endpoints: the query side
// of the lifecycle audit trail (internal/audit) and the process's
// structured-log ring (internal/obs/log). Events are written by the
// mutation paths themselves — these handlers only search, ingest external
// emitters' events, and serve the ring.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/core"
	"gallery/internal/obs"
	obslog "gallery/internal/obs/log"
	"gallery/internal/relstore"
)

// withActor stamps every request's context with the audit actor from the
// X-Gallery-Actor header, so audit events written while handling the
// request name who asked for the mutation. Requests that declare no
// identity are recorded as "anonymous" — distinguishable from any real
// caller — and counted, so an instance can see how much of its mutation
// traffic is unattributed. This chain only runs with auth disabled; under
// auth the verified token identity is stamped instead and this header is
// ignored entirely.
func withActor(next http.Handler, anonymous *obs.Counter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		actor := r.Header.Get("X-Gallery-Actor")
		if actor == "" {
			actor = "anonymous"
			anonymous.Inc()
		}
		next.ServeHTTP(w, r.WithContext(audit.WithActor(r.Context(), actor)))
	})
}

// handleListAudit is GET /v1/audit: field-filtered search over the audit
// trail. Simple filters ride dedicated query parameters (entity, model,
// action, actor, trace, since, until, limit, order); arbitrary predicates
// ride repeated where=field:op:value parameters using the same operator
// names as POST /v1/search.
func (s *Server) handleListAudit(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	q := audit.Query{
		EntityID: qp.Get("entity"),
		ModelID:  qp.Get("model"),
		Action:   qp.Get("action"),
		Actor:    qp.Get("actor"),
		TraceID:  qp.Get("trace"),
		Desc:     qp.Get("order") != "asc",
		Limit:    100,
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad limit %q", core.ErrBadSpec, v))
			return
		}
		q.Limit = n
	}
	var err error
	if q.Since, err = parseAuditTime(qp.Get("since")); err != nil {
		writeErr(w, err)
		return
	}
	if q.Until, err = parseAuditTime(qp.Get("until")); err != nil {
		writeErr(w, err)
		return
	}
	for _, raw := range qp["where"] {
		c, err := parseAuditWhere(raw)
		if err != nil {
			writeErr(w, err)
			return
		}
		q.Where = append(q.Where, c)
	}
	evs, err := s.reg.Audit().Events(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.AuditEventsResponse{Events: auditDTOs(evs)})
}

// handleEntityTimeline is GET /v1/audit/entity/{id}: the lineage timeline
// of one entity — events naming it directly plus, for a model, events on
// its instances and versions (joined through model_id) — in write order.
func (s *Server) handleEntityTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad limit %q", core.ErrBadSpec, v))
			return
		}
		limit = n
	}
	evs, err := s.reg.Audit().EntityTimeline(id, limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.AuditEventsResponse{Events: auditDTOs(evs)})
}

// handleIngestAudit is POST /v1/audit: external emitters without their own
// audit store — serving gateways reporting hot swaps — ship the events
// they witnessed. The trail stamps ID, sequence and (when missing) time;
// actor and trace ID are trusted from the sender, falling back to the
// request's own when absent.
func (s *Server) handleIngestAudit(w http.ResponseWriter, r *http.Request) {
	var req api.RecordAuditRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp := api.RecordAuditResponse{}
	for _, ev := range req.Events {
		err := s.reg.Audit().Record(r.Context(), audit.Event{
			Time:       ev.Time,
			Actor:      ev.Actor,
			Action:     ev.Action,
			EntityType: ev.EntityType,
			EntityID:   ev.EntityID,
			ModelID:    ev.ModelID,
			Before:     ev.Before,
			After:      ev.After,
			Detail:     ev.Detail,
			TraceID:    ev.TraceID,
		})
		if err != nil {
			resp.Rejected++
			continue
		}
		resp.Accepted++
	}
	status := http.StatusAccepted
	if resp.Accepted == 0 && resp.Rejected > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// handleDebugLogs serves the in-memory structured-log ring. Filters:
// ?level= (debug|info|warn|error), ?since= (RFC3339 or a relative
// duration like 5m), ?after= (sequence cursor from a previous response's
// next_seq, for follow mode), ?limit=.
func (s *Server) handleDebugLogs(w http.ResponseWriter, r *http.Request) {
	serveDebugLogs(s.logs, w, r)
}

// serveDebugLogs is shared with the serving gateway's HTTP front end —
// both processes expose the same ring contract at /v1/debug/logs.
func serveDebugLogs(ring *obslog.Ring, w http.ResponseWriter, r *http.Request) {
	if ring == nil {
		writeErr(w, fmt.Errorf("%w: log ring not enabled", core.ErrNotFound))
		return
	}
	qp := r.URL.Query()
	f := obslog.Filter{MinLevel: obslog.ParseLevel(qp.Get("level"))}
	if v := qp.Get("since"); v != "" {
		t, err := parseAuditTime(v)
		if err != nil {
			writeErr(w, err)
			return
		}
		f.Since = t
	}
	if v := qp.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad after cursor %q", core.ErrBadSpec, v))
			return
		}
		f.AfterSeq = n
		f.HasAfterSeq = true
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad limit %q", core.ErrBadSpec, v))
			return
		}
		f.Limit = n
	}
	entries, next := ring.Entries(f)
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, api.DebugLogsResponse{Entries: entries, NextSeq: next})
}

// parseAuditTime accepts an absolute RFC3339 instant or a relative
// duration ("15m" means that long ago).
func parseAuditTime(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		return time.Now().Add(-d), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: bad time %q (want RFC3339 or a duration like 15m)", core.ErrBadSpec, v)
	}
	return t, nil
}

// parseAuditWhere turns one "field:op:value" parameter into a relstore
// constraint, reusing the wire operator names of POST /v1/search.
func parseAuditWhere(raw string) (relstore.Constraint, error) {
	parts := strings.SplitN(raw, ":", 3)
	if len(parts) != 3 || parts[0] == "" {
		return relstore.Constraint{}, fmt.Errorf("%w: bad where %q (want field:op:value)", core.ErrBadSpec, raw)
	}
	op, err := relstore.ParseOp(parts[1])
	if err != nil {
		return relstore.Constraint{}, fmt.Errorf("%w: %v", core.ErrBadSpec, err)
	}
	field, val := parts[0], parts[2]
	switch field {
	case "seq":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return relstore.Constraint{}, fmt.Errorf("%w: bad seq value %q", core.ErrBadSpec, val)
		}
		return relstore.Constraint{Field: field, Op: op, Value: relstore.Int(n)}, nil
	case "created":
		t, err := parseAuditTime(val)
		if err != nil {
			return relstore.Constraint{}, err
		}
		return relstore.Constraint{Field: field, Op: op, Value: relstore.Time(t)}, nil
	default:
		return relstore.Constraint{Field: field, Op: op, Value: relstore.String(val)}, nil
	}
}

func auditDTOs(evs []audit.Event) []api.AuditEvent {
	out := make([]api.AuditEvent, len(evs))
	for i, ev := range evs {
		out[i] = api.AuditEvent{
			ID:         ev.ID,
			Seq:        ev.Seq,
			Time:       ev.Time,
			Actor:      ev.Actor,
			Action:     ev.Action,
			EntityType: ev.EntityType,
			EntityID:   ev.EntityID,
			ModelID:    ev.ModelID,
			Before:     ev.Before,
			After:      ev.After,
			Detail:     ev.Detail,
			TraceID:    ev.TraceID,
		}
	}
	return out
}
