package server

import (
	"net/http"
	"strings"
	"testing"

	"gallery/internal/uuid"
)

// TestHandlerErrorPaths sweeps every route's malformed-id and
// malformed-body failure modes, asserting the uniform error mapping.
func TestHandlerErrorPaths(t *testing.T) {
	h := newHarness(t)
	base := h.ts.URL
	unknown := uuid.New().String()

	cases := []struct {
		method, path string
		body         string
		wantStatus   int
	}{
		// Malformed UUIDs in paths -> 400.
		{"GET", "/v1/models/nope", "", 400},
		{"POST", "/v1/models/nope/evolve", "{}", 400},
		{"GET", "/v1/models/nope/evolution", "", 400},
		{"POST", "/v1/models/nope/deprecate", "{}", 400},
		{"GET", "/v1/models/nope/versions", "", 400},
		{"GET", "/v1/models/nope/production", "", 400},
		{"GET", "/v1/models/nope/upstreams", "", 400},
		{"GET", "/v1/models/nope/downstreams", "", 400},
		{"POST", "/v1/versions/nope/promote", "{}", 400},
		{"GET", "/v1/instances/nope", "", 400},
		{"GET", "/v1/instances/nope/blob", "", 400},
		{"POST", "/v1/instances/nope/deprecate", "{}", 400},
		{"POST", "/v1/instances/nope/metrics", "{}", 400},
		{"POST", "/v1/instances/nope/metricset", "{}", 400},
		{"GET", "/v1/instances/nope/metrics", "", 400},
		{"POST", "/v1/instances/nope/drift", "{}", 400},
		{"POST", "/v1/instances/nope/skew", "{}", 400},
		{"POST", "/v1/instances/nope/metricsblob", "mape:1", 400},

		// Unknown-but-valid UUIDs -> 404.
		{"GET", "/v1/models/" + unknown, "", 404},
		{"GET", "/v1/instances/" + unknown, "", 404},
		{"GET", "/v1/instances/" + unknown + "/blob", "", 404},
		{"POST", "/v1/models/" + unknown + "/deprecate", "{}", 404},
		{"POST", "/v1/versions/" + unknown + "/promote", "{}", 404},

		// Malformed JSON bodies -> 400.
		{"POST", "/v1/models", "{", 400},
		{"POST", "/v1/instances", "{", 400},
		{"POST", "/v1/search", "{", 400},
		{"POST", "/v1/deps", "{", 400},
		{"DELETE", "/v1/deps", "{", 400},
		{"POST", "/v1/rules", "{", 400},
		{"POST", "/v1/health/fleet", "{", 400},

		// Semantic failures.
		{"GET", "/v1/models", "", 400}, // missing base_version_id
		{"POST", "/v1/models", `{"base_version_id":""}`, 400},
		{"POST", "/v1/models", `{"base_version_id":"x","upstreams":["nope"]}`, 400},
		{"POST", "/v1/instances", `{"model_id":"nope"}`, 400},
		{"POST", "/v1/deps", `{"from":"nope","to":"nope"}`, 400},
		{"POST", "/v1/rules/nope/select", "{}", 500}, // unknown rule
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := h.ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

// TestRuleEndpointsDisabledWithoutEngine verifies storage-only deployments
// (tiers 1–3) reject rule traffic cleanly.
func TestRuleEndpointsDisabledWithoutEngine(t *testing.T) {
	h2 := newStorageOnlyHarness(t)
	for _, path := range []string{"/v1/rules"} {
		resp, err := http.Get(h2.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s without engine: %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(h2.ts.URL+"/v1/rules/x/select", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("select without engine: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(h2.ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("alerts without engine: %d, want 404", resp.StatusCode)
	}
}
