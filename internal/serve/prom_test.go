package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
)

// TestGatewayPromExposition drives real predictions through the serving
// daemon's HTTP front and validates the Prometheus scrape: correct
// content type, byte-valid 0.0.4 text format, and the per-tenant/
// per-model RED series present.
func TestGatewayPromExposition(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "demand", 0, &forecast.Heuristic{K: 2})
	gw := newTestGateway(t, src, Options{})
	ts := httptest.NewServer(NewHandler(gw))
	t.Cleanup(ts.Close)

	// One success and one failure (unknown model → upstream lookup
	// error) so both the request and error counters have series.
	for _, model := range []string{"demand", "ghost"} {
		resp, err := ts.Client().Post(
			ts.URL+"/v1/predict/"+model, "application/json",
			strings.NewReader(`{"history":[1,3]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/debug/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != httpmw.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, httpmw.PromContentType)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	if err := obs.ValidateExposition(payload); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, payload)
	}
	body := string(payload)
	for _, want := range []string{
		`serve_predict_requests_total{namespace="default",model="demand"} 1`,
		`serve_predict_requests_total{namespace="default",model="ghost"} 1`,
		`serve_predict_errors_total{namespace="default",model="ghost"} 1`,
		"# TYPE serve_predict_seconds histogram",
		`tenant_http_requests_total{namespace="default"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// The JSON snapshot keeps its own explicit negotiation headers.
	resp, err = ts.Client().Get(ts.URL + "/v1/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON metrics Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("JSON metrics Cache-Control = %q, want no-store", cc)
	}
}
