package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterVecChildrenAndGet(t *testing.T) {
	v := NewCounterVec("tenant_http_requests_total", []string{"namespace"}, 8)
	v.With("ads").Inc()
	v.With("ads").Inc()
	v.With("maps").Add(5)
	if got := v.Get("ads"); got != 2 {
		t.Fatalf("ads = %d, want 2", got)
	}
	if got := v.Get("maps"); got != 5 {
		t.Fatalf("maps = %d, want 5", got)
	}
	if got := v.Get("absent"); got != 0 {
		t.Fatalf("absent = %d, want 0", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}

func TestCounterVecTwoLabels(t *testing.T) {
	v := NewCounterVec("serve_predict_requests_total", []string{"namespace", "model"}, 8)
	v.With2("ads", "ctr").Inc()
	if got := v.Get2("ads", "ctr"); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	// Distinct label positions must not collide.
	if got := v.Get2("ctr", "ads"); got != 0 {
		t.Fatalf("swapped labels = %d, want 0", got)
	}
}

func TestCounterVecOverflowCap(t *testing.T) {
	const cap = 4
	v := NewCounterVec("x_total", []string{"namespace"}, cap)
	for i := 0; i < cap; i++ {
		v.With(fmt.Sprintf("ns%d", i)).Inc()
	}
	// Everything beyond the cap lands in one shared overflow child.
	for i := cap; i < cap+10; i++ {
		v.With(fmt.Sprintf("ns%d", i)).Inc()
	}
	if v.Len() != cap {
		t.Fatalf("Len = %d, want %d (cap enforced)", v.Len(), cap)
	}
	snap := map[string]int64{}
	v.snapshot(snap)
	of := snap[Name("x_total", "namespace", OverflowLabel)]
	if of != 10 {
		t.Fatalf("overflow = %d, want 10", of)
	}
	// Existing children still addressable after the cap is hit.
	v.With("ns0").Inc()
	if got := v.Get("ns0"); got != 2 {
		t.Fatalf("ns0 = %d, want 2", got)
	}
}

func TestCounterVecConcurrentTenantsBounded(t *testing.T) {
	const cap = 16
	v := NewCounterVec("x_total", []string{"namespace"}, cap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				// Each goroutine cycles through far more label values than
				// the cap; growth must stay bounded under contention.
				v.With(fmt.Sprintf("g%d-ns%d", g, i%100)).Inc()
			}
		}(g)
	}
	wg.Wait()
	if v.Len() > cap {
		t.Fatalf("Len = %d, want <= %d", v.Len(), cap)
	}
	snap := map[string]int64{}
	v.snapshot(snap)
	var total int64
	for _, n := range snap {
		total += n
	}
	if total != 8*500 {
		t.Fatalf("total observations = %d, want %d", total, 8*500)
	}
}

func TestHistogramVecOverflowAndPeek(t *testing.T) {
	v := NewHistogramVec("x_seconds", []string{"namespace", "model"}, []float64{0.1, 1}, 2)
	v.With2("a", "m1").Observe(0.05)
	v.With2("b", "m2").Observe(0.5)
	v.With2("c", "m3").Observe(2) // over cap -> overflow child
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if h := v.Peek2("a", "m1"); h == nil || h.Count() != 1 {
		t.Fatalf("Peek2(a,m1) = %v", h)
	}
	if h := v.Peek2("c", "m3"); h != nil {
		t.Fatalf("Peek2(c,m3) should be nil (absorbed by overflow)")
	}
	names := []string{}
	v.each(func(name string, h *Histogram) { names = append(names, name) })
	want := Name("x_seconds", "namespace", OverflowLabel, "model", OverflowLabel)
	found := false
	for _, n := range names {
		if n == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow series %q missing from %v", want, names)
	}
}

func TestRegistryVecSnapshotFolding(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("tenant_http_requests_total", []string{"namespace"}, 8)
	cv.With("ads").Add(3)
	hv := r.HistogramVec("tenant_http_request_seconds", []string{"namespace"}, []float64{0.1, 1}, 8)
	hv.With("ads").Observe(0.05)

	snap := r.Snapshot()
	if got := snap.Counters[Name("tenant_http_requests_total", "namespace", "ads")]; got != 3 {
		t.Fatalf("folded counter = %d, want 3", got)
	}
	hs, ok := snap.Histograms[Name("tenant_http_request_seconds", "namespace", "ads")]
	if !ok || hs.Count != 1 {
		t.Fatalf("folded histogram = %+v ok=%v", hs, ok)
	}
	// Same call returns the same vector.
	if r.CounterVec("tenant_http_requests_total", []string{"namespace"}, 8) != cv {
		t.Fatal("CounterVec not idempotent")
	}
	if got := r.SumCounters("tenant_http_requests_total"); got != 3 {
		t.Fatalf("SumCounters = %d, want 3", got)
	}
}

func TestCounterVecLabelArityPanics(t *testing.T) {
	v := NewCounterVec("x_total", []string{"a", "b"}, 4)
	mustPanic(t, func() { v.With("only-one") })
	v1 := NewCounterVec("y_total", []string{"a"}, 4)
	mustPanic(t, func() { v1.With2("x", "y") })
	mustPanic(t, func() { NewCounterVec("z_total", nil, 4) })
	mustPanic(t, func() { NewCounterVec("z_total", []string{"a", "b", "c"}, 4) })
}

func TestHistogramBoundValidation(t *testing.T) {
	// Unsorted bounds must panic at registration instead of being
	// silently reordered.
	mustPanic(t, func() { NewHistogram([]float64{1, 0.5, 2}) })
	// Duplicate bounds leave a permanently empty bucket — also a panic.
	mustPanic(t, func() { NewHistogram([]float64{0.5, 0.5, 2}) })
	mustPanic(t, func() { NewRegistry().Histogram("h", []float64{3, 1}) })
	mustPanic(t, func() {
		NewHistogramVec("h", []string{"a"}, []float64{2, 1}, 4)
	})
	// Sorted bounds register fine.
	NewHistogram([]float64{0.5, 1, 2})
	NewHistogram(nil)
}

func TestHistogramCountAtOrBelow(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.09, 0.3, 0.9, 5} {
		h.Observe(v)
	}
	if got := h.CountAtOrBelow(0.1); got != 2 {
		t.Fatalf("<=0.1 = %d, want 2", got)
	}
	if got := h.CountAtOrBelow(0.5); got != 3 {
		t.Fatalf("<=0.5 = %d, want 3", got)
	}
	// A threshold between bounds rounds down to the nearest bound.
	if got := h.CountAtOrBelow(0.7); got != 3 {
		t.Fatalf("<=0.7 = %d, want 3 (rounded down to 0.5)", got)
	}
	if got := h.CountAtOrBelow(1); got != 4 {
		t.Fatalf("<=1 = %d, want 4", got)
	}
	if got := h.CountAtOrBelow(0.01); got != 0 {
		t.Fatalf("<=0.01 = %d, want 0", got)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
