// Package experiments implements every experiment in DESIGN.md's
// per-experiment index (E1–E15): one function per paper table, figure, or
// quantitative claim, each returning a structured, printable result. The
// benchmark harness (cmd/benchharness) prints them as paper-style rows;
// bench_test.go measures them; the package's own tests assert that each
// result reproduces the paper's qualitative shape.
package experiments

import (
	"fmt"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// epoch is the deterministic start time of every experiment.
var epoch = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// Env bundles a deterministic Gallery deployment for one experiment run.
type Env struct {
	Reg    *core.Registry
	Repo   *rules.Repo
	Engine *rules.Engine
	Clock  *clock.Mock
}

// NewEnv builds an in-memory Gallery with a seeded UUID generator and a
// mock clock, so every experiment is exactly reproducible.
func NewEnv(seed int64) (*Env, error) {
	clk := clock.NewMock(epoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(seed),
	})
	if err != nil {
		return nil, err
	}
	repo := rules.NewRepo(clk)
	return &Env{
		Reg:    reg,
		Repo:   repo,
		Engine: rules.NewEngine(reg, repo, clk),
		Clock:  clk,
	}, nil
}

// mustEnv is NewEnv for experiment code where failure is programmer error.
func mustEnv(seed int64) *Env {
	e, err := NewEnv(seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: env: %v", err))
	}
	return e
}
