// Package sketch provides mergeable, fixed-memory streaming sketches of
// value distributions for continuous model-health monitoring (paper
// §3.6). A Sketch is a two-sided log-bucketed histogram plus running
// count/sum/sum-of-squares/min/max: enough to recover mean, variance and
// a binned shape of the distribution at a few kilobytes per stream,
// regardless of traffic volume.
//
// The serving gateway records one Sketch per model stream (predicted
// values, latencies) on the predict hot path — Observe is a handful of
// atomic operations, no locks, no allocation — and periodically snapshots
// them onto the wire. Snapshots with identical geometry merge
// associatively, so windows can be re-aggregated anywhere downstream, and
// two snapshots can be compared with PSI or KL divergence to quantify
// distribution shift between a reference window and live traffic.
package sketch

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Config fixes a sketch's bucket geometry. Values with |v| in [Lo, Hi)
// land in one of Buckets log-spaced buckets per sign; |v| < Lo falls into
// a single center bucket and |v| >= Hi into a per-sign overflow bucket.
// Two sketches can be merged or compared only when their geometry is
// identical.
type Config struct {
	Lo      float64 // smallest resolved magnitude (default 1e-4)
	Hi      float64 // magnitudes >= Hi overflow (default 1e9)
	Buckets int     // log buckets per sign (default 128)
}

func (c *Config) defaults() {
	if c.Lo <= 0 {
		c.Lo = 1e-4
	}
	if c.Hi <= c.Lo {
		c.Hi = 1e9
	}
	if c.Buckets <= 0 {
		c.Buckets = 128
	}
}

// Sketch is the live, concurrently writable form. All methods are safe
// for concurrent use; Observe is lock-free and allocation-free.
type Sketch struct {
	cfg        Config
	invLogGama float64 // 1 / ln(gamma), gamma = (Hi/Lo)^(1/Buckets)

	// counts layout, for n = cfg.Buckets:
	//   [0]            negative overflow   (v <= -Hi)
	//   [1 .. n]       negative log buckets, largest magnitude first
	//   [n+1]          center bucket       (|v| < Lo)
	//   [n+2 .. 2n+1]  positive log buckets, smallest magnitude first
	//   [2n+2]         positive overflow   (v >= Hi)
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	sumSq  atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits; +Inf until first Observe
	max    atomic.Uint64 // float64 bits; -Inf until first Observe
}

// New builds a sketch with the given geometry.
func New(cfg Config) *Sketch {
	cfg.defaults()
	s := &Sketch{
		cfg:        cfg,
		invLogGama: float64(cfg.Buckets) / math.Log(cfg.Hi/cfg.Lo),
		counts:     make([]atomic.Int64, 2*cfg.Buckets+3),
	}
	s.min.Store(math.Float64bits(math.Inf(1)))
	s.max.Store(math.Float64bits(math.Inf(-1)))
	return s
}

// index maps a value onto its bucket. NaN is mapped to the center bucket
// so a corrupt observation cannot panic the serving path.
func (s *Sketch) index(v float64) int {
	n := s.cfg.Buckets
	m := math.Abs(v)
	if !(m >= s.cfg.Lo) { // |v| < Lo, or NaN
		return n + 1
	}
	if m >= s.cfg.Hi {
		if v > 0 {
			return 2*n + 2
		}
		return 0
	}
	k := int(math.Log(m/s.cfg.Lo) * s.invLogGama)
	if k >= n { // float round-off at the top edge
		k = n - 1
	}
	if v > 0 {
		return n + 2 + k
	}
	return n - k
}

// Observe records one value.
func (s *Sketch) Observe(v float64) {
	s.counts[s.index(v)].Add(1)
	s.count.Add(1)
	casAdd(&s.sum, v)
	casAdd(&s.sumSq, v*v)
	for {
		old := s.min.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if s.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := s.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if s.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

func casAdd(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (s *Sketch) Count() int64 { return s.count.Load() }

// Config returns the sketch's geometry.
func (s *Sketch) Geometry() Config { return s.cfg }

// Snapshot captures the sketch's current state as a plain, serializable
// value. Concurrent Observe calls may or may not be included; the
// snapshot is internally consistent enough for monitoring (counts and
// moments can disagree by in-flight observations).
func (s *Sketch) Snapshot() Snapshot {
	snap := Snapshot{
		Lo:      s.cfg.Lo,
		Hi:      s.cfg.Hi,
		Buckets: s.cfg.Buckets,
		Count:   s.count.Load(),
		Sum:     math.Float64frombits(s.sum.Load()),
		SumSq:   math.Float64frombits(s.sumSq.Load()),
	}
	if snap.Count > 0 {
		snap.Min = math.Float64frombits(s.min.Load())
		snap.Max = math.Float64frombits(s.max.Load())
		snap.Counts = make([]int64, len(s.counts))
		for i := range s.counts {
			snap.Counts[i] = s.counts[i].Load()
		}
	}
	return snap
}

// Snapshot is the frozen, wire-serializable form of a Sketch. Counts is
// nil for an empty snapshot and otherwise has length 2*Buckets+3 using
// the layout documented on Sketch.
type Snapshot struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Buckets int     `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum,omitempty"`
	SumSq   float64 `json:"sum_sq,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Counts  []int64 `json:"counts,omitempty"`
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Variance returns the population variance, clamped at 0 against float
// round-off, or 0 with no observations.
func (s Snapshot) Variance() float64 {
	if s.Count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/float64(s.Count) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the population standard deviation.
func (s Snapshot) Std() float64 { return math.Sqrt(s.Variance()) }

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucketed
// counts: overflow buckets resolve to Min/Max, the center bucket to 0,
// and log buckets to their upper edge (a conservative estimate with at
// most one bucket-width of relative error). Returns 0 with no
// observations or a malformed snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || s.Validate() != nil {
		return 0
	}
	n := s.Buckets
	gamma := math.Pow(s.Hi/s.Lo, 1/float64(n))
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum < target {
			continue
		}
		switch {
		case i == 0: // negative overflow
			return s.Min
		case i <= n: // negative log bucket n-k → lower (more negative) edge
			k := n - i
			return -s.Lo * math.Pow(gamma, float64(k+1))
		case i == n+1: // center
			return 0
		case i <= 2*n+1: // positive log bucket
			k := i - n - 2
			v := s.Lo * math.Pow(gamma, float64(k+1))
			return math.Min(v, s.Max)
		default: // positive overflow
			return s.Max
		}
	}
	return s.Max
}

// sameGeometry reports whether two snapshots can be merged or compared.
func (s Snapshot) sameGeometry(o Snapshot) bool {
	return s.Lo == o.Lo && s.Hi == o.Hi && s.Buckets == o.Buckets
}

// Validate rejects snapshots whose bucket array does not match their
// declared geometry — a guard for snapshots arriving off the wire.
func (s Snapshot) Validate() error {
	if s.Buckets <= 0 || s.Lo <= 0 || s.Hi <= s.Lo {
		return fmt.Errorf("sketch: bad geometry (lo=%g hi=%g n=%d)", s.Lo, s.Hi, s.Buckets)
	}
	if s.Count < 0 {
		return fmt.Errorf("sketch: negative count %d", s.Count)
	}
	if s.Count > 0 && len(s.Counts) != 2*s.Buckets+3 {
		return fmt.Errorf("sketch: %d buckets need %d counts, got %d",
			s.Buckets, 2*s.Buckets+3, len(s.Counts))
	}
	return nil
}

// Merge folds o into s and returns the combined snapshot. Merging is
// commutative and associative, so windows can be re-aggregated in any
// order. It fails when the geometries differ.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	// A zero-value Snapshot (no geometry, no data) is the merge identity,
	// so accumulators can start from Snapshot{} without knowing the
	// geometry in advance.
	if s.Buckets == 0 && s.Count == 0 {
		if err := o.Validate(); err != nil {
			return Snapshot{}, err
		}
		return o, nil
	}
	if o.Buckets == 0 && o.Count == 0 {
		if err := s.Validate(); err != nil {
			return Snapshot{}, err
		}
		return s, nil
	}
	if !s.sameGeometry(o) {
		return Snapshot{}, fmt.Errorf(
			"sketch: geometry mismatch: (lo=%g hi=%g n=%d) vs (lo=%g hi=%g n=%d)",
			s.Lo, s.Hi, s.Buckets, o.Lo, o.Hi, o.Buckets)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	if err := o.Validate(); err != nil {
		return Snapshot{}, err
	}
	if o.Count == 0 {
		return s, nil
	}
	if s.Count == 0 {
		return o, nil
	}
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	out.SumSq += o.SumSq
	out.Min = math.Min(s.Min, o.Min)
	out.Max = math.Max(s.Max, o.Max)
	out.Counts = make([]int64, len(s.Counts))
	copy(out.Counts, s.Counts)
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out, nil
}

// psiEpsilon smooths empty buckets so PSI/KL stay finite when one side
// has mass where the other has none — the interesting case for drift.
const psiEpsilon = 1e-6

// PSI computes the Population Stability Index between a reference
// snapshot and a live one: sum over buckets of (q-p)·ln(q/p) with
// Laplace-style smoothing. Common operating points: < 0.1 stable,
// 0.1–0.25 moderate shift, > 0.25 significant shift.
func PSI(ref, live Snapshot) (float64, error) {
	return divergence(ref, live, func(p, q float64) float64 {
		return (q - p) * math.Log(q/p)
	})
}

// KL computes the Kullback-Leibler divergence D(live ‖ ref) over the
// binned distributions, with the same smoothing as PSI.
func KL(ref, live Snapshot) (float64, error) {
	return divergence(ref, live, func(p, q float64) float64 {
		return q * math.Log(q/p)
	})
}

func divergence(ref, live Snapshot, term func(p, q float64) float64) (float64, error) {
	if !ref.sameGeometry(live) {
		return 0, fmt.Errorf(
			"sketch: geometry mismatch: (lo=%g hi=%g n=%d) vs (lo=%g hi=%g n=%d)",
			ref.Lo, ref.Hi, ref.Buckets, live.Lo, live.Hi, live.Buckets)
	}
	if ref.Count == 0 || live.Count == 0 {
		return 0, fmt.Errorf("sketch: divergence needs observations on both sides (ref=%d live=%d)",
			ref.Count, live.Count)
	}
	if err := ref.Validate(); err != nil {
		return 0, err
	}
	if err := live.Validate(); err != nil {
		return 0, err
	}
	k := float64(len(ref.Counts))
	refTotal := float64(ref.Count) + psiEpsilon*k
	liveTotal := float64(live.Count) + psiEpsilon*k
	var sum float64
	for i := range ref.Counts {
		p := (float64(ref.Counts[i]) + psiEpsilon) / refTotal
		q := (float64(live.Counts[i]) + psiEpsilon) / liveTotal
		sum += term(p, q)
	}
	return sum, nil
}
