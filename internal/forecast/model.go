package forecast

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"time"
)

// Context is what a model sees when asked for a one-step-ahead forecast:
// the recent history and the timestamp being predicted. Event carries the
// holiday/event flag for models that include event features — the
// distinction paper §4.2's dynamic switching case study turns on.
type Context struct {
	History []float64
	Time    time.Time
	Event   bool
	// PrevEvent is the event flag of the previous step; event-aware
	// models use it to distinguish event onset (where plain AR models
	// fail hardest) from mid-event steps whose lags already reflect the
	// elevated demand.
	PrevEvent bool
	// HistoryEvents, when non-nil, carries the event flag for every
	// history point (same length as History). Multi-step-horizon models
	// need it to know whether their reference observations were taken
	// during an event.
	HistoryEvents []bool
}

// eventAt reports the event flag of history index i, falling back to
// PrevEvent for the final point when flags were not supplied.
func (c *Context) eventAt(i int) bool {
	if c.HistoryEvents != nil && i >= 0 && i < len(c.HistoryEvents) {
		return c.HistoryEvents[i]
	}
	return i == len(c.History)-1 && c.PrevEvent
}

// Model is a one-step-ahead forecaster. Implementations are serializable
// with Encode/Decode so Gallery can store them as opaque blobs.
type Model interface {
	// Name identifies the model class.
	Name() string
	// Train fits the model on a historical series.
	Train(data Series) error
	// Forecast predicts the next value given recent context.
	Forecast(ctx Context) float64
}

// ErrNeedData reports a training set too small for the model.
var ErrNeedData = errors.New("forecast: not enough training data")

// --- heuristic: mean of last K observations ---

// Heuristic is the paper's stable fallback: "a heuristic model which uses
// the mean value of last 5 minutes as the forecasts" (§3.7).
type Heuristic struct {
	K int
}

// Name implements Model.
func (h *Heuristic) Name() string { return fmt.Sprintf("heuristic_mean_%d", h.K) }

// Train is a no-op: the heuristic has no parameters.
func (h *Heuristic) Train(Series) error {
	if h.K <= 0 {
		h.K = 5
	}
	return nil
}

// Forecast returns the mean of the last K observations.
func (h *Heuristic) Forecast(ctx Context) float64 {
	k := h.K
	if k <= 0 {
		k = 5
	}
	n := len(ctx.History)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum float64
	for _, v := range ctx.History[n-k:] {
		sum += v
	}
	return sum / float64(k)
}

// --- exponential smoothing ---

// EWMA forecasts with exponentially weighted history.
type EWMA struct {
	Alpha float64
}

// Name implements Model.
func (e *EWMA) Name() string { return "ewma" }

// Train clamps alpha into (0, 1].
func (e *EWMA) Train(Series) error {
	if e.Alpha <= 0 || e.Alpha > 1 {
		e.Alpha = 0.3
	}
	return nil
}

// Forecast folds the history through the smoother.
func (e *EWMA) Forecast(ctx Context) float64 {
	if len(ctx.History) == 0 {
		return 0
	}
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	s := ctx.History[0]
	for _, v := range ctx.History[1:] {
		s = alpha*v + (1-alpha)*s
	}
	return s
}

// --- seasonal naive ---

// SeasonalNaive predicts the value one season ago.
type SeasonalNaive struct {
	Period int
}

// Name implements Model.
func (s *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal_naive_%d", s.Period) }

// Train validates the period.
func (s *SeasonalNaive) Train(Series) error {
	if s.Period <= 0 {
		return fmt.Errorf("forecast: seasonal naive needs a positive period")
	}
	return nil
}

// Forecast returns history[n-Period], falling back to the last value.
func (s *SeasonalNaive) Forecast(ctx Context) float64 {
	n := len(ctx.History)
	if n == 0 {
		return 0
	}
	if s.Period > 0 && n >= s.Period {
		return ctx.History[n-s.Period]
	}
	return ctx.History[n-1]
}

// --- autoregressive linear regression ---

// LinearAR is a least-squares autoregressive model with time-of-day and
// day-of-week harmonics and, optionally, an event indicator feature. With
// UseEventFeature it is the "model that includes holiday/event features"
// of paper §4.2; without, the plain counterpart.
type LinearAR struct {
	Lags            int
	UseEventFeature bool
	// Horizon is how many steps ahead the model predicts (default 1).
	// At horizon H the lag features are y[t-H] ... y[t-H-Lags+1]: the
	// marketplace-planning setting where recent observations are not yet
	// available and scheduled events must be anticipated from the
	// calendar rather than adapted to from fresh data.
	Horizon int
	// Theta holds the learned coefficients; non-empty means trained.
	// Exported so the model survives gob serialization through Gallery.
	Theta []float64
}

// Name implements Model.
func (m *LinearAR) Name() string {
	name := fmt.Sprintf("linear_ar%d", m.Lags)
	if m.horizon() > 1 {
		name = fmt.Sprintf("%s_h%d", name, m.horizon())
	}
	if m.UseEventFeature {
		name += "_event"
	}
	return name
}

func (m *LinearAR) horizon() int {
	if m.Horizon <= 0 {
		return 1
	}
	return m.Horizon
}

// span is the oldest lag offset the feature row reaches back to.
func (m *LinearAR) span() int { return m.horizon() + m.Lags - 1 }

// features builds the regression row for predicting index i of values,
// appending into dst (pass nil for a fresh row; batch prediction passes a
// reused scratch buffer). refEvent is the event flag of the reference
// observation values[i-h].
func (m *LinearAR) features(dst []float64, values []float64, t time.Time, event, refEvent bool, i int) []float64 {
	row := dst[:0]
	if cap(row) < m.Lags+8 {
		row = make([]float64, 0, m.Lags+8)
	}
	row = append(row, 1)
	h := m.horizon()
	for l := 0; l < m.Lags; l++ {
		row = append(row, values[i-h-l])
	}
	hour := float64(t.Hour())
	dow := float64(t.Weekday())
	row = append(row,
		math.Sin(2*math.Pi*hour/24), math.Cos(2*math.Pi*hour/24),
		math.Sin(2*math.Pi*dow/7), math.Cos(2*math.Pi*dow/7),
	)
	if m.UseEventFeature {
		// Three regimes, keyed on whether the *reference* observation
		// (the freshest lag the horizon allows) was itself in an event:
		// predicting into an event from calm data needs a scale-up,
		// event-to-event needs none, and calm-from-event needs a
		// scale-down. The signal is proportional to the recent level,
		// so interact with the reference observation.
		ref := values[i-h]
		up, steady, down := 0.0, 0.0, 0.0
		switch {
		case event && !refEvent:
			up = ref
		case event && refEvent:
			steady = ref
		case !event && refEvent:
			down = ref
		}
		row = append(row, up, steady, down)
	}
	return row
}

// Train solves the regularized normal equations by Gaussian elimination.
func (m *LinearAR) Train(data Series) error {
	if m.Lags <= 0 {
		m.Lags = 6
	}
	values := data.Values()
	n := len(values)
	if n <= m.span()+8 {
		return fmt.Errorf("%w: %d points for lag-%d horizon-%d AR", ErrNeedData, n, m.Lags, m.horizon())
	}
	var rows [][]float64
	var ys []float64
	for i := m.span(); i < n; i++ {
		rows = append(rows, m.features(nil, values, data[i].T, data[i].Event, data[i-m.horizon()].Event, i))
		ys = append(ys, values[i])
	}
	theta, err := solveLeastSquares(rows, ys, 1e-6)
	if err != nil {
		return err
	}
	m.Theta = theta
	return nil
}

// Forecast applies the learned coefficients to the current context. The
// prediction target sits Horizon steps past the end of History.
func (m *LinearAR) Forecast(ctx Context) float64 {
	return m.forecastScratch(ctx, nil)
}

// forecastScratch is Forecast with caller-owned scratch buffers; batch
// prediction reuses them across items (see batch.go).
func (m *LinearAR) forecastScratch(ctx Context, sc *arScratch) float64 {
	if len(m.Theta) == 0 || len(ctx.History) < m.span() {
		// Degenerate fallback: last value (random-walk forecast).
		if len(ctx.History) == 0 {
			return 0
		}
		return ctx.History[len(ctx.History)-1]
	}
	// Build the feature row as if history were the value array, padded so
	// the predicted element sits Horizon steps past the last observation;
	// the reference observation is then exactly History's tail.
	h := m.horizon()
	var values, rowBuf []float64
	if sc != nil {
		values, rowBuf = sc.values[:0], sc.row
	}
	if cap(values) < len(ctx.History)+h {
		// Size for history plus padding in one shot; appending history
		// first and padding after would grow (and copy) twice.
		values = make([]float64, 0, len(ctx.History)+h)
	}
	values = append(values, ctx.History...)
	for k := 0; k < h; k++ {
		values = append(values, 0)
	}
	i := len(values) - 1
	refEvent := ctx.eventAt(len(ctx.History) - 1)
	row := m.features(rowBuf, values, ctx.Time, ctx.Event, refEvent, i)
	if sc != nil {
		sc.values, sc.row = values, row
	}
	var v float64
	for j, x := range row {
		v += m.Theta[j] * x
	}
	if v < 0 {
		v = 0
	}
	return v
}

// solveLeastSquares returns argmin ||X theta - y||^2 + ridge ||theta||^2
// via the normal equations and Gaussian elimination with partial pivoting.
func solveLeastSquares(X [][]float64, y []float64, ridge float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("%w: empty design matrix", ErrNeedData)
	}
	p := len(X[0])
	// A = X'X + ridge I (p x p), b = X'y.
	A := make([][]float64, p)
	for i := range A {
		A[i] = make([]float64, p+1)
	}
	for _, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("forecast: ragged design matrix")
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for r := range X {
				s += X[r][i] * X[r][j]
			}
			if i == j {
				s += ridge
			}
			A[i][j] = s
		}
		var s float64
		for r := range X {
			s += X[r][i] * y[r]
		}
		A[i][p] = s
	}
	// Gaussian elimination with partial pivoting on the augmented matrix.
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("forecast: singular normal equations at column %d", col)
		}
		A[col], A[pivot] = A[pivot], A[col]
		for r := col + 1; r < p; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c <= p; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	theta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := A[i][p]
		for j := i + 1; j < p; j++ {
			s -= A[i][j] * theta[j]
		}
		theta[i] = s / A[i][i]
	}
	return theta, nil
}

// --- serialization ---

// blobEnvelope frames a serialized model with its concrete type.
type blobEnvelope struct {
	Kind string
	Data []byte
}

func init() {
	gob.Register(&Heuristic{})
	gob.Register(&EWMA{})
	gob.Register(&SeasonalNaive{})
	gob.Register(&LinearAR{})
	gob.Register(&GBStumps{})
}

// Encode serializes a model to the opaque blob form Gallery stores. The
// registry never interprets these bytes (model neutrality, paper §3.3.2).
func Encode(m Model) ([]byte, error) {
	var inner bytes.Buffer
	if err := gob.NewEncoder(&inner).Encode(m); err != nil {
		return nil, fmt.Errorf("forecast: encode %s: %w", m.Name(), err)
	}
	var out bytes.Buffer
	env := blobEnvelope{Kind: fmt.Sprintf("%T", m), Data: inner.Bytes()}
	if err := gob.NewEncoder(&out).Encode(env); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decode deserializes a model blob produced by Encode, resolving the
// concrete type through DefaultLoader (see loader.go).
func Decode(blob []byte) (Model, error) {
	return DefaultLoader.Load(blob)
}
