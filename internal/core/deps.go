package core

import (
	"context"
	"fmt"
	"sort"

	"gallery/internal/audit"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// This file implements dependency management with versioning (paper
// §3.4.2, Figures 5–7): the upstream/downstream graph, cycle rejection,
// and automatic version propagation. When a model changes, every
// transitive downstream gets a new version record — but production
// pointers are left alone, because "models are not automatically updated
// ... users [must] be aware that their model dependencies have changed
// before their production environment is updated."

// AddDependency declares that from depends on to. It rejects self-edges,
// duplicate edges, and anything that would create a cycle. Adding a
// dependency bumps from's version (paper Fig. 7) and propagates to from's
// downstreams.
func (g *Registry) AddDependency(from, to uuid.UUID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if from == to {
		return fmt.Errorf("%w: model cannot depend on itself", ErrBadSpec)
	}
	if _, err := g.getModelLocked(from); err != nil {
		return err
	}
	if _, err := g.getModelLocked(to); err != nil {
		return err
	}
	// Cycle check: from→to is a cycle iff to already (transitively)
	// depends on from.
	reach, err := g.transitiveUpstreamsLocked(to)
	if err != nil {
		return err
	}
	if reach[from] {
		return fmt.Errorf("%w: %s already depends on %s", ErrCycle, to, from)
	}
	d := &Dependency{From: from, To: to, Created: g.now()}
	muts := []relstore.Mutation{
		{Kind: relstore.MutInsert, Table: TableDeps, Row: depToRow(d)},
	}
	bumps, err := g.versionBumpsLocked(from, CauseDepAdded, uuid.Nil, to)
	if err != nil {
		return err
	}
	muts = append(muts, bumps...)
	if err := g.dal.Meta().Batch(muts); err != nil {
		return fmt.Errorf("core: add dependency %s -> %s: %w", from, to, err)
	}
	g.audited(context.Background(), audit.Event{
		Action: audit.ActionDepAdd, EntityType: audit.EntityModel,
		EntityID: from.String(), ModelID: from.String(),
		After: "depends on " + to.String(),
	})
	return nil
}

// RemoveDependency deletes the edge from→to and, like any dependency
// change, versions the downstream side.
func (g *Registry) RemoveDependency(from, to uuid.UUID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	muts := []relstore.Mutation{
		{Kind: relstore.MutDelete, Table: TableDeps, PK: depKey(from, to)},
	}
	bumps, err := g.versionBumpsLocked(from, CauseDepRemoved, uuid.Nil, to)
	if err != nil {
		return err
	}
	muts = append(muts, bumps...)
	if err := g.dal.Meta().Batch(muts); err != nil {
		return err
	}
	g.audited(context.Background(), audit.Event{
		Action: audit.ActionDepRemove, EntityType: audit.EntityModel,
		EntityID: from.String(), ModelID: from.String(),
		Before: "depends on " + to.String(),
	})
	return nil
}

// Upstreams returns the models that id directly depends on.
func (g *Registry) Upstreams(id uuid.UUID) ([]uuid.UUID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.upstreamsLocked(id)
}

// Downstreams returns the models that directly depend on id.
func (g *Registry) Downstreams(id uuid.UUID) ([]uuid.UUID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.downstreamsLocked(id)
}

// TransitiveDownstreams returns every model reachable by following
// "depends on id" edges — the blast radius of changing id, which is the
// holistic view the paper motivates.
func (g *Registry) TransitiveDownstreams(id uuid.UUID) ([]uuid.UUID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set, err := g.transitiveDownstreamsLocked(id)
	if err != nil {
		return nil, err
	}
	return sortedIDs(set), nil
}

func (g *Registry) upstreamsLocked(id uuid.UUID) ([]uuid.UUID, error) {
	return g.depEdges("from_model", id, "to_model")
}

func (g *Registry) downstreamsLocked(id uuid.UUID) ([]uuid.UUID, error) {
	return g.depEdges("to_model", id, "from_model")
}

func (g *Registry) depEdges(matchField string, id uuid.UUID, wantField string) ([]uuid.UUID, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table:   TableDeps,
		Where:   []relstore.Constraint{{Field: matchField, Op: relstore.OpEq, Value: relstore.String(id.String())}},
		OrderBy: "created",
	})
	if err != nil {
		return nil, err
	}
	out := make([]uuid.UUID, 0, len(rows))
	for _, r := range rows {
		u, err := uuid.Parse(r[wantField].Str)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt dependency row: %w", err)
		}
		out = append(out, u)
	}
	return out, nil
}

func (g *Registry) transitiveUpstreamsLocked(id uuid.UUID) (map[uuid.UUID]bool, error) {
	return g.closure(id, g.upstreamsLocked)
}

func (g *Registry) transitiveDownstreamsLocked(id uuid.UUID) (map[uuid.UUID]bool, error) {
	return g.closure(id, g.downstreamsLocked)
}

// closure BFSes from start (exclusive) following step.
func (g *Registry) closure(start uuid.UUID, step func(uuid.UUID) ([]uuid.UUID, error)) (map[uuid.UUID]bool, error) {
	seen := make(map[uuid.UUID]bool)
	frontier := []uuid.UUID{start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		next, err := step(cur)
		if err != nil {
			return nil, err
		}
		for _, n := range next {
			if n != start && !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	return seen, nil
}

// versionBumpsLocked builds the mutations for one model change: a new
// version record for the changed model (promoted to production — its
// owner made the change deliberately) plus non-production dep_update
// records for every transitive downstream.
func (g *Registry) versionBumpsLocked(changed uuid.UUID, cause VersionCause, instanceID, triggeredBy uuid.UUID) ([]relstore.Mutation, error) {
	var muts []relstore.Mutation
	own, err := g.bumpOneLocked(changed, cause, instanceID, triggeredBy, true)
	if err != nil {
		return nil, err
	}
	muts = append(muts, own...)

	down, err := g.transitiveDownstreamsLocked(changed)
	if err != nil {
		return nil, err
	}
	for _, d := range sortedIDs(down) {
		dm, err := g.bumpOneLocked(d, CauseDepUpdate, uuid.Nil, changed, false)
		if err != nil {
			return nil, err
		}
		muts = append(muts, dm...)
	}
	return muts, nil
}

// bumpOneLocked creates the next version record for one model, reading
// the denormalized minor counter off the model row so the bump is O(1) in
// the model's history length. When production is true it also demotes the
// current production record and repoints the model at the new one.
func (g *Registry) bumpOneLocked(id uuid.UUID, cause VersionCause, instanceID, triggeredBy uuid.UUID, production bool) ([]relstore.Mutation, error) {
	m, err := g.getModelLocked(id)
	if err != nil {
		return nil, err
	}
	v := &VersionRecord{
		ID:          g.gen.New(),
		ModelID:     id,
		Major:       m.Major,
		Minor:       m.Minor + 1,
		Cause:       cause,
		InstanceID:  instanceID,
		TriggeredBy: triggeredBy,
		Created:     g.now(),
		Production:  production,
	}
	var muts []relstore.Mutation
	if production {
		if !m.ProductionVersion.IsNil() {
			cur, err := g.versionByIDLocked(m.ProductionVersion)
			if err != nil {
				return nil, err
			}
			cur.Production = false
			muts = append(muts, relstore.Mutation{Kind: relstore.MutUpdate, Table: TableVersions, Row: versionToRow(cur)})
		}
		m.ProductionVersion = v.ID
	}
	m.Minor = v.Minor
	muts = append(muts,
		relstore.Mutation{Kind: relstore.MutInsert, Table: TableVersions, Row: versionToRow(v)},
		relstore.Mutation{Kind: relstore.MutUpdate, Table: TableModels, Row: modelToRow(m)},
	)
	return muts, nil
}

// versionByIDLocked fetches one version record by primary key.
func (g *Registry) versionByIDLocked(id uuid.UUID) (*VersionRecord, error) {
	row, err := g.dal.Meta().Get(TableVersions, id.String())
	if err != nil {
		return nil, fmt.Errorf("%w: version %s", ErrNotFound, id)
	}
	return rowToVersion(row)
}

// Version fetches one version record by primary key.
func (g *Registry) Version(id uuid.UUID) (*VersionRecord, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.versionByIDLocked(id)
}

// VersionHistory returns a model's version records, oldest first.
func (g *Registry) VersionHistory(id uuid.UUID) ([]*VersionRecord, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table:   TableVersions,
		Where:   []relstore.Constraint{{Field: "model_id", Op: relstore.OpEq, Value: relstore.String(id.String())}},
		OrderBy: "minor",
	})
	if err != nil {
		return nil, err
	}
	return rowsToVersions(rows)
}

// LatestVersion returns a model's newest version record.
func (g *Registry) LatestVersion(id uuid.UUID) (*VersionRecord, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, err := g.latestVersionLocked(id)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("%w: model %s has no versions", ErrNotFound, id)
	}
	return v, nil
}

func (g *Registry) latestVersionLocked(id uuid.UUID) (*VersionRecord, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table:   TableVersions,
		Where:   []relstore.Constraint{{Field: "model_id", Op: relstore.OpEq, Value: relstore.String(id.String())}},
		OrderBy: "minor",
		Desc:    true,
		Limit:   1,
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rowToVersion(rows[0])
}

// ProductionVersion returns the version currently promoted for a model,
// or ErrNotFound if none is.
func (g *Registry) ProductionVersion(id uuid.UUID) (*VersionRecord, error) {
	return g.ProductionVersionCtx(context.Background(), id)
}

// ProductionVersionCtx is ProductionVersion with trace attribution. The
// lookup runs under the registry lock, so the span covers the whole
// resolve (model row + version row) rather than individual table reads.
func (g *Registry) ProductionVersionCtx(ctx context.Context, id uuid.UUID) (*VersionRecord, error) {
	_, span := trace.Start(ctx, "core.production_version")
	if span != nil {
		span.Annotate("model", id.String())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v, err := g.productionVersionLocked(id)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	if v == nil {
		err = fmt.Errorf("%w: model %s has no production version", ErrNotFound, id)
		span.EndErr(err)
		return nil, err
	}
	span.End()
	return v, nil
}

func (g *Registry) productionVersionLocked(id uuid.UUID) (*VersionRecord, error) {
	m, err := g.getModelLocked(id)
	if err != nil {
		return nil, err
	}
	if m.ProductionVersion.IsNil() {
		return nil, nil
	}
	return g.versionByIDLocked(m.ProductionVersion)
}

// Promote marks a version record as the production version for its model,
// demoting whichever held that role — the owner's explicit upgrade step
// after a dependency update (paper §3.4.2).
func (g *Registry) Promote(versionID uuid.UUID) error {
	return g.PromoteCtx(context.Background(), versionID)
}

// PromoteCtx is Promote carrying the caller's context, so the audit event
// inherits its actor and trace lineage.
func (g *Registry) PromoteCtx(ctx context.Context, versionID uuid.UUID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.promoteLocked(ctx, versionID)
}

// PromoteInstance promotes the version record realized by an instance —
// what a deployment callback holds is an instance id, so this resolves it
// to the version the upload minted (the newest one, should a model ever
// carry several records for one instance) and promotes that.
func (g *Registry) PromoteInstance(instanceID uuid.UUID) error {
	return g.PromoteInstanceCtx(context.Background(), instanceID)
}

// PromoteInstanceCtx is PromoteInstance with audit/trace lineage from the
// caller — a rule-driven deployment passes the firing rule's context so
// the promotion event links back to the trace that triggered it.
func (g *Registry) PromoteInstanceCtx(ctx context.Context, instanceID uuid.UUID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	in, err := g.GetInstance(instanceID)
	if err != nil {
		return err
	}
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table: TableVersions,
		Where: []relstore.Constraint{
			{Field: "model_id", Op: relstore.OpEq, Value: relstore.String(in.ModelID.String())},
			{Field: "instance_id", Op: relstore.OpEq, Value: relstore.String(instanceID.String())},
		},
		OrderBy: "minor",
		Desc:    true,
		Limit:   1,
	})
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("%w: instance %s has no version record", ErrNotFound, instanceID)
	}
	v, err := rowToVersion(rows[0])
	if err != nil {
		return err
	}
	return g.promoteLocked(ctx, v.ID)
}

func (g *Registry) promoteLocked(ctx context.Context, versionID uuid.UUID) error {
	row, err := g.dal.Meta().Get(TableVersions, versionID.String())
	if err != nil {
		return fmt.Errorf("%w: version %s", ErrNotFound, versionID)
	}
	v, err := rowToVersion(row)
	if err != nil {
		return err
	}
	if v.Production {
		return nil
	}
	m, err := g.getModelLocked(v.ModelID)
	if err != nil {
		return err
	}
	var muts []relstore.Mutation
	before := "none"
	if !m.ProductionVersion.IsNil() {
		cur, err := g.versionByIDLocked(m.ProductionVersion)
		if err != nil {
			return err
		}
		cur.Production = false
		before = fmt.Sprintf("v%d.%d (%s)", cur.Major, cur.Minor, cur.ID)
		muts = append(muts, relstore.Mutation{Kind: relstore.MutUpdate, Table: TableVersions, Row: versionToRow(cur)})
	}
	v.Production = true
	m.ProductionVersion = v.ID
	muts = append(muts,
		relstore.Mutation{Kind: relstore.MutUpdate, Table: TableVersions, Row: versionToRow(v)},
		relstore.Mutation{Kind: relstore.MutUpdate, Table: TableModels, Row: modelToRow(m)},
	)
	if err := g.dal.Meta().BatchCtx(ctx, muts); err != nil {
		return err
	}
	// The event lands on the realized instance when the version has one
	// (so an instance timeline shows its promotions) and joins the model
	// timeline through model_id either way.
	entityType, entityID := audit.EntityModel, v.ModelID.String()
	if !v.InstanceID.IsNil() {
		entityType, entityID = audit.EntityInstance, v.InstanceID.String()
	}
	g.audited(ctx, audit.Event{
		Action: audit.ActionPromote, EntityType: entityType,
		EntityID: entityID, ModelID: v.ModelID.String(),
		Before: before,
		After:  fmt.Sprintf("v%d.%d (%s)", v.Major, v.Minor, v.ID),
	})
	return nil
}

func sortedIDs(set map[uuid.UUID]bool) []uuid.UUID {
	out := make([]uuid.UUID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
