package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"gallery/internal/api"
)

// jsonEncode is the reference: what the old json.NewEncoder path wrote.
func jsonEncode(t testing.TB, resp api.PredictResponse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAppendPredictResponseMatchesEncodingJSON(t *testing.T) {
	cases := []api.PredictResponse{
		{},
		{ModelID: "demand-sf", InstanceID: "inst-1", VersionID: "v-9", Version: "3.2", Value: 127.25},
		{ModelID: "m", InstanceID: "i", VersionID: "v", Version: "1.0", Learner: "linear_ar", Value: -0.125, Stale: true},
		{ModelID: "m", Value: 1e-9},            // exponent form with zero-trim
		{ModelID: "m", Value: 3.5e21},          // large exponent form
		{ModelID: "m", Value: 1e-6},            // boundary: exactly 1e-6 stays decimal
		{ModelID: "m", Value: 0.0000009999},    // just under the boundary
		{ModelID: "m", Value: math.MaxFloat64}, // 'e' form
		{ModelID: "m", Value: 5},               // integral float
		{ModelID: `we"ird\mo<del>&`, InstanceID: "ünïcode", VersionID: "tab\tchar", Version: "1.0", Value: 1},
	}
	for _, resp := range cases {
		want := jsonEncode(t, resp)
		got := appendPredictResponse(nil, resp)
		if !bytes.Equal(got, want) {
			t.Errorf("encoding mismatch for %+v:\n got %q\nwant %q", resp, got, want)
		}
	}
}

func TestAppendPredictResponseQuick(t *testing.T) {
	err := quick.Check(func(model, inst, ver, version, learner string, mant int64, exp int8, stale bool) bool {
		// Spread values across the full float range, including the
		// notation switchover boundaries.
		val := float64(mant) * math.Pow(10, float64(exp%30))
		if math.IsInf(val, 0) || math.IsNaN(val) {
			val = 0
		}
		resp := api.PredictResponse{
			ModelID: model, InstanceID: inst, VersionID: ver,
			Version: version, Learner: learner, Value: val, Stale: stale,
		}
		return bytes.Equal(appendPredictResponse(nil, resp), jsonEncode(t, resp))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAppendPredictResponseZeroAlloc pins the point of the exercise:
// encoding into a reused buffer allocates nothing.
func TestAppendPredictResponseZeroAlloc(t *testing.T) {
	resp := api.PredictResponse{
		ModelID: "demand-sf", InstanceID: "inst-1", VersionID: "v-9",
		Version: "3.2", Learner: "linear_ar", Value: 127.25,
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendPredictResponse(buf[:0], resp)
	})
	if allocs != 0 {
		t.Fatalf("appendPredictResponse allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkPredictResponseEncode(b *testing.B) {
	resp := api.PredictResponse{
		ModelID: "demand-sf", InstanceID: "inst-1", VersionID: "v-9",
		Version: "3.2", Learner: "linear_ar", Value: 127.25,
	}
	b.Run("append_pooled", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = appendPredictResponse(buf[:0], resp)
		}
	})
	b.Run("encoding_json", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
