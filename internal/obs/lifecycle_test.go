package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestRuntimeGaugesExposed pins the identity/uptime gauge contract from
// RegisterRuntime in both exposition formats: gallery_build_info is a
// constant-1 gauge whose labels carry the binary's identity, and the
// process start/uptime pair agrees with ProcessStart().
func TestRuntimeGaugesExposed(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)

	buildSeries := Name("gallery_build_info", "version", BuildVersion(), "go_version", runtime.Version())

	// JSON side: the snapshot served at /v1/debug/metrics.
	snap := r.Snapshot()
	if got := snap.Gauges[buildSeries]; got != 1 {
		t.Errorf("snapshot %s = %v, want 1", buildSeries, got)
	}
	start := snap.Gauges["process_start_time_seconds"]
	wantStart := float64(ProcessStart().UnixNano()) / 1e9
	if start != wantStart {
		t.Errorf("process_start_time_seconds = %v, want %v", start, wantStart)
	}
	if up := snap.Gauges["process_uptime_seconds"]; up < 0 {
		t.Errorf("process_uptime_seconds = %v, want >= 0", up)
	}

	// Prom side: the scrape at /v1/debug/metrics/prom.
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gallery_build_info gauge",
		`gallery_build_info{version="` + BuildVersion() + `",go_version="` + runtime.Version() + `"} 1`,
		"# TYPE process_start_time_seconds gauge",
		"# TYPE process_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
}

// TestRemoveGaugeDropsSeriesFromProm covers the vec-child lifecycle the
// SLO engine relies on: deleting an objective removes its labelled gauge
// children, and the next scrape must not resurrect the dead series. The
// golden exposition pins the exact before/after output.
func TestRemoveGaugeDropsSeriesFromProm(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Name("slo_error_budget", "slo", "checkout")).Set(0.75)
	r.Gauge(Name("slo_error_budget", "slo", "search")).Set(0.5)

	prom := func() string {
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(buf.Bytes()); err != nil {
			t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
		}
		return buf.String()
	}

	before := "# HELP slo_error_budget Gallery gauge slo_error_budget.\n" +
		"# TYPE slo_error_budget gauge\n" +
		"slo_error_budget{slo=\"checkout\"} 0.75\n" +
		"slo_error_budget{slo=\"search\"} 0.5\n"
	if got := prom(); got != before {
		t.Fatalf("before removal:\n got %q\nwant %q", got, before)
	}

	r.RemoveGauge(Name("slo_error_budget", "slo", "checkout"))

	after := "# HELP slo_error_budget Gallery gauge slo_error_budget.\n" +
		"# TYPE slo_error_budget gauge\n" +
		"slo_error_budget{slo=\"search\"} 0.5\n"
	if got := prom(); got != after {
		t.Fatalf("after removal:\n got %q\nwant %q", got, after)
	}
	if snap := r.Snapshot(); len(snap.Gauges) != 1 {
		t.Fatalf("snapshot gauges = %v, want only the surviving series", snap.Gauges)
	}
}

// TestOverflowChildRoundTripsExposition pins the exact exposition of a
// capped vector that has spilled into its _overflow child: the overflow
// series must render as a legal, parseable sample like any other child.
func TestOverflowChildRoundTripsExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("tenant_requests_total", []string{"namespace"}, 1)
	cv.With("ads").Add(4)
	cv.With("eats").Add(2) // over cap -> _overflow
	cv.With("maps").Inc()  // also folded into _overflow

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition with _overflow child invalid: %v\n%s", err, buf.String())
	}
	want := "# HELP tenant_requests_total Gallery counter tenant_requests_total.\n" +
		"# TYPE tenant_requests_total counter\n" +
		"tenant_requests_total{namespace=\"_overflow\"} 3\n" +
		"tenant_requests_total{namespace=\"ads\"} 4\n"
	if got := buf.String(); got != want {
		t.Fatalf("overflow exposition:\n got %q\nwant %q", got, want)
	}
}
