package relstore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"gallery/internal/wal"
)

// Compact rewrites the store's write-ahead log as a snapshot of current
// state, bounding recovery time and disk use for long-lived deployments
// (Gallery's MySQL gets this from its own checkpointing; the embedded
// store needs it explicitly). The snapshot is written to a sibling file
// and atomically renamed over the live log, so a crash during compaction
// leaves either the old or the new log intact, never a mix.
//
// Compact is only meaningful for durable stores; on a volatile store it is
// a no-op.
func (s *Store) Compact(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}

	tmp := path + ".compact"
	newLog, err := wal.Open(tmp, wal.Options{}, nil)
	if err != nil {
		return fmt.Errorf("relstore: open compaction log: %w", err)
	}
	cleanup := func() {
		newLog.Close()
		os.Remove(tmp)
	}

	// Deterministic table order for reproducible snapshots.
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)

	appendOp := func(op walOp) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(op); err != nil {
			return fmt.Errorf("relstore: encode snapshot record: %w", err)
		}
		return newLog.Append(buf.Bytes())
	}
	for _, name := range names {
		t := s.tables[name]
		schema := t.schema
		if err := appendOp(walOp{Kind: opCreateTable, Schema: &schema}); err != nil {
			cleanup()
			return err
		}
		// Emit rows in primary-key order.
		var iterErr error
		t.scanAll(false, func(row Row) bool {
			if err := appendOp(walOp{Kind: opInsert, Table: name, Row: row}); err != nil {
				iterErr = err
				return false
			}
			return true
		})
		if iterErr != nil {
			cleanup()
			return iterErr
		}
	}

	// Swap: close both logs, rename, reopen.
	if err := newLog.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: close compaction log: %w", err)
	}
	if err := s.log.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: close live log: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("relstore: swap compacted log: %w", err)
	}
	reopened, err := wal.Open(path, wal.Options{}, nil)
	if err != nil {
		return fmt.Errorf("relstore: reopen after compaction: %w", err)
	}
	s.log = reopened
	return nil
}

// LogSize returns the byte size of the store's write-ahead log, or 0 for
// volatile stores. Operators use it to decide when to Compact.
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return 0
	}
	return s.log.Size()
}
