package core

import (
	"gallery/internal/uuid"
)

// The paper (§3.6): "With model performance metrics, we can derive various
// insights about the models in Gallery." This file implements the fleet
// health report: a holistic sweep over a project's live instances that
// surfaces the two highlighted insights (drift, production skew) plus
// information-completeness, giving model owners the signal and model
// consumers the trust the paper describes.

// InstanceHealth is one instance's health summary.
type InstanceHealth struct {
	InstanceID   uuid.UUID
	ModelName    string
	City         string
	Completeness float64
	HasMetrics   bool
	Drift        *DriftReport
	Skew         *SkewReport
}

// FleetHealth aggregates a project sweep.
type FleetHealth struct {
	Project   string
	Instances []InstanceHealth

	// Summary counts.
	Total          int
	Drifted        int
	Skewed         int
	LowMetadata    int // completeness below 0.5
	MissingMetrics int
}

// FleetHealthConfig tunes the sweep.
type FleetHealthConfig struct {
	Project string
	// Metric is the error metric to check drift and skew on (e.g. "mape").
	Metric string
	Drift  DriftConfig
	Skew   SkewConfig
	// Limit bounds how many instances are swept; 0 means all.
	Limit int
}

// CheckFleetHealth sweeps a project's non-deprecated instances.
func (g *Registry) CheckFleetHealth(cfg FleetHealthConfig) (*FleetHealth, error) {
	if cfg.Metric == "" {
		cfg.Metric = "mape"
	}
	cfg.Drift.Metric = cfg.Metric
	cfg.Skew.Metric = cfg.Metric

	instances, err := g.SearchInstances(InstanceFilter{Project: cfg.Project, Limit: cfg.Limit})
	if err != nil {
		return nil, err
	}
	rep := &FleetHealth{Project: cfg.Project, Total: len(instances)}
	for _, in := range instances {
		ih := InstanceHealth{InstanceID: in.ID, ModelName: in.Name, City: in.City}

		comp, err := g.Completeness(in.ID)
		if err != nil {
			return nil, err
		}
		ih.Completeness = comp.Score
		ih.HasMetrics = comp.HasMetrics
		if comp.Score < 0.5 {
			rep.LowMetadata++
		}
		if !comp.HasMetrics {
			rep.MissingMetrics++
		}

		drift, err := g.CheckDrift(in.ID, cfg.Drift)
		if err != nil {
			return nil, err
		}
		ih.Drift = drift
		if drift.Drifted {
			rep.Drifted++
		}

		skew, err := g.CheckSkew(in.ID, cfg.Skew)
		if err != nil {
			return nil, err
		}
		ih.Skew = skew
		if skew.Skewed {
			rep.Skewed++
		}

		rep.Instances = append(rep.Instances, ih)
	}
	return rep, nil
}
