package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/dal"
	"gallery/internal/relstore"
)

// Experiment E13 — paper §3.5 storage consistency: "we always write model
// blobs first and only write the model metadata after the model blobs are
// successfully stored. If the model blob of a model instance is saved but
// the metadata fails to save, then the model instance will not be
// available in the system."
//
// The experiment drives N instance writes through both orderings under
// injected failures on both stores and counts the two corruption classes:
// dangling metadata (metadata pointing at a missing blob — catastrophic:
// serving breaks) and orphaned blobs (wasted space — benign: GC reclaims
// them). Blob-first must produce zero dangling rows; metadata-first is the
// ablation arm (DESIGN.md A3) and does not.

// ConsistencyArm is one ordering's outcome.
type ConsistencyArm struct {
	Ordering          string
	Writes            int
	Succeeded         int
	DanglingMetadata  int
	OrphanedBlobs     int
	OrphansCollected  int
	ServingFailures   int // reads of committed instances that fail
	CommittedReadable int
}

// ConsistencyResult holds both arms.
type ConsistencyResult struct {
	BlobFirst     ConsistencyArm
	MetadataFirst ConsistencyArm
}

// consistencySchema is the minimal instance table for this experiment.
func consistencySchema() relstore.Schema {
	return relstore.Schema{
		Table: "instances",
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "blob_location", Kind: relstore.KindString, Nullable: true},
			{Name: "created", Kind: relstore.KindTime},
		},
		Key:     "id",
		Indexes: []string{"blob_location"},
	}
}

// WriteOrdering runs n writes per arm with deterministic fault injection:
// every blobEvery-th blob write and every metaEvery-th metadata write
// fails (simulating S3/HDFS and MySQL outages).
func WriteOrdering(n, blobEvery, metaEvery int) (*ConsistencyResult, error) {
	res := &ConsistencyResult{}
	for _, arm := range []string{"blob-first", "metadata-first"} {
		a, err := runOrderingArm(arm, n, blobEvery, metaEvery)
		if err != nil {
			return nil, err
		}
		if arm == "blob-first" {
			res.BlobFirst = a
		} else {
			res.MetadataFirst = a
		}
	}
	return res, nil
}

func runOrderingArm(ordering string, n, blobEvery, metaEvery int) (ConsistencyArm, error) {
	arm := ConsistencyArm{Ordering: ordering, Writes: n}

	var blobWrites atomic.Int64
	injected := errors.New("injected outage")
	blobs := blobstore.NewMemory(blobstore.Options{
		Replicas: 1,
		Hook: func(op blobstore.OpKind, replica int, key string) error {
			if op == blobstore.OpPut && blobEvery > 0 {
				if blobWrites.Add(1)%int64(blobEvery) == 0 {
					return injected
				}
			}
			return nil
		},
	})
	meta := relstore.NewMemory()
	if err := meta.CreateTable(consistencySchema()); err != nil {
		return arm, err
	}
	d := dal.New(meta, blobs, dal.Options{
		Refs: []dal.BlobRef{{Table: "instances", LocField: "blob_location"}},
	})

	metaWrites := 0
	var committed []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("inst-%06d", i)
		row := relstore.Row{
			"id":      relstore.String(id),
			"created": relstore.Time(epoch.Add(time.Duration(i) * time.Second)),
		}
		// Inject metadata failures by pre-occupying the primary key: the
		// arm's metadata insert then fails exactly like a MySQL write
		// error, after whatever the ordering wrote first.
		metaWrites++
		if metaEvery > 0 && metaWrites%metaEvery == 0 {
			if err := meta.Insert("instances", relstore.Row{
				"id":      relstore.String(id),
				"created": relstore.Time(epoch),
			}); err != nil {
				return arm, err
			}
		}

		var err error
		if ordering == "blob-first" {
			_, err = d.InsertWithBlob("instances", row, "blob_location", id, []byte("model bytes"))
		} else {
			_, err = d.InsertMetadataFirst("instances", row, "blob_location", id, []byte("model bytes"))
		}
		if err == nil {
			arm.Succeeded++
			committed = append(committed, id)
		}
	}

	// Corruption audit.
	dangling, err := d.Dangling()
	if err != nil {
		return arm, err
	}
	arm.DanglingMetadata = len(dangling)
	orphans, err := d.Orphans()
	if err != nil {
		return arm, err
	}
	arm.OrphanedBlobs = len(orphans)
	collected, err := d.CollectOrphans()
	if err != nil {
		return arm, err
	}
	arm.OrphansCollected = collected

	// Every committed instance must still serve.
	for _, id := range committed {
		row, err := meta.Get("instances", id)
		if err != nil {
			arm.ServingFailures++
			continue
		}
		if _, err := d.GetBlob(row["blob_location"].Str); err != nil {
			arm.ServingFailures++
			continue
		}
		arm.CommittedReadable++
	}
	return arm, nil
}

// Format renders the two arms side by side.
func (r *ConsistencyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-8s %-10s %-18s %-15s %-10s %s\n",
		"ordering", "writes", "committed", "dangling metadata", "orphaned blobs", "collected", "serving failures")
	for _, a := range []ConsistencyArm{r.BlobFirst, r.MetadataFirst} {
		fmt.Fprintf(&b, "%-16s %-8d %-10d %-18d %-15d %-10d %d\n",
			a.Ordering, a.Writes, a.Succeeded, a.DanglingMetadata, a.OrphanedBlobs, a.OrphansCollected, a.ServingFailures)
	}
	b.WriteString("blob-first (paper §3.5) must show zero dangling metadata and zero serving failures;\n")
	b.WriteString("its only cost is orphaned blobs, all reclaimed by GC. metadata-first is the unsafe ablation.\n")
	return b.String()
}
