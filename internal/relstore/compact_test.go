package relstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"gallery/internal/wal"
)

func TestCompactShrinksLogAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(modelsSchema()); err != nil {
		t.Fatal(err)
	}
	// Generate churn: inserts, updates, deletes — lots of dead log records.
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("i%03d", i)
		if err := s.Insert("instances", row(id, "b", "sf", t0, 0.1)); err != nil {
			t.Fatal(err)
		}
		for rev := 0; rev < 5; rev++ {
			if err := s.Update("instances", row(id, "b", fmt.Sprintf("city%d", rev), t0, 0.1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 100; i++ {
		if err := s.Delete("instances", fmt.Sprintf("i%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.LogSize()
	if err := s.Compact(path); err != nil {
		t.Fatal(err)
	}
	after := s.LogSize()
	if after >= before/2 {
		t.Fatalf("compaction barely shrank the log: %d -> %d", before, after)
	}

	// State intact in the live store.
	n, _ := s.Len("instances")
	if n != 100 {
		t.Fatalf("rows after compaction = %d", n)
	}
	got, err := s.Get("instances", "i150")
	if err != nil || got["city"].Str != "city4" {
		t.Fatalf("row after compaction = %v, %v", got, err)
	}

	// Post-compaction writes land in the new log and everything recovers.
	if err := s.Insert("instances", row("post", "b", "sf", t0, 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ = s2.Len("instances")
	if n != 101 {
		t.Fatalf("recovered rows = %d, want 101", n)
	}
	got, err = s2.Get("instances", "i150")
	if err != nil || got["city"].Str != "city4" {
		t.Fatalf("recovered row = %v, %v", got, err)
	}
	// Indexes rebuilt correctly after recovery from a compacted log.
	rows, ex, err := s2.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("city4")}},
	})
	if err != nil || ex.Index != "city" {
		t.Fatalf("index query: %v, %+v", err, ex)
	}
	if len(rows) != 100 {
		t.Fatalf("index query found %d rows", len(rows))
	}
}

func TestCompactVolatileNoOp(t *testing.T) {
	s := NewMemory()
	if err := s.Compact("ignored"); err != nil {
		t.Fatalf("volatile compact = %v", err)
	}
	if s.LogSize() != 0 {
		t.Fatal("volatile store reports a log size")
	}
}

func TestCompactEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(path); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(modelsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("instances", row("x", "b", "sf", t0, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.Len("instances"); n != 1 {
		t.Fatalf("rows = %d", n)
	}
}
