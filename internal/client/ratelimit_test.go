package client

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gallery/internal/api"
)

// rateLimitedHandler answers 429 with a Retry-After for the first failN
// requests, then succeeds.
func rateLimitedHandler(failN int, retryAfter string, v string) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failN) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(v))
	})
	return h, &calls
}

// TestRetryAfterHonored: on a 429 the client waits at least the server's
// Retry-After hint (jittered upward) instead of its much smaller
// exponential backoff.
func TestRetryAfterHonored(t *testing.T) {
	h, calls := rateLimitedHandler(1, "2", `{"models":1,"instances":0,"metrics":0}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{
		Retries: 2, Sleep: noSleep(&slept),
		RetryBase: 10 * time.Millisecond, RetryMax: 10 * time.Second,
	})
	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats after transient 429: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	// hint=2s, jitter in [0, hint/4]: the sleep lands in [2s, 2.5s] — far
	// above the 10ms exponential base, and under RetryMax.
	if slept[0] < 2*time.Second || slept[0] > 2500*time.Millisecond {
		t.Fatalf("slept %v, want within [2s, 2.5s] per Retry-After hint", slept[0])
	}
}

// TestRetryAfterCapped: the honored hint still respects RetryMax.
func TestRetryAfterCapped(t *testing.T) {
	h, _ := rateLimitedHandler(1, "3600", `{"models":1,"instances":0,"metrics":0}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{
		Retries: 2, Sleep: noSleep(&slept),
		RetryBase: 10 * time.Millisecond, RetryMax: 500 * time.Millisecond,
	})
	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(slept) != 1 || slept[0] > 500*time.Millisecond {
		t.Fatalf("slept %v, want exactly one sleep capped at RetryMax=500ms", slept)
	}
}

// TestRetry429POST: a 429 is rejected before the handler runs, so even
// mutations are safe to resend.
func TestRetry429POST(t *testing.T) {
	h, calls := rateLimitedHandler(1, "1", `{"id":"m1"}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{Retries: 2, Sleep: noSleep(&slept)})
	if _, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv"}); err != nil {
		t.Fatalf("register after transient 429: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (POST retried after 429)", got)
	}
}

// TestRetry429Exhausted: the final error surfaces the RetryAfter hint so
// callers can schedule their own backoff.
func TestRetry429Exhausted(t *testing.T) {
	h, _ := rateLimitedHandler(100, "7", `{}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	c := NewWith(ts.URL, Options{Retries: 1, Sleep: noSleep(&slept)})
	_, err := c.Stats()
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
}
