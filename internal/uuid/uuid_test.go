package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsV4(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := New()
		if got := u[6] >> 4; got != 4 {
			t.Fatalf("version nibble = %x, want 4 (uuid %s)", got, u)
		}
		if got := u[8] >> 6; got != 2 {
			t.Fatalf("variant bits = %b, want 10 (uuid %s)", got, u)
		}
	}
}

func TestStringFormat(t *testing.T) {
	u := New()
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("len(%q) = %d, want 36", s, len(s))
	}
	for _, i := range []int{8, 13, 18, 23} {
		if s[i] != '-' {
			t.Fatalf("%q: byte %d = %c, want '-'", s, i, s[i])
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	u := New()
	back, err := Parse(u.String())
	if err != nil {
		t.Fatalf("Parse(%s): %v", u, err)
	}
	if back != u {
		t.Fatalf("round trip mismatch: %s != %s", back, u)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-uuid",
		"0000000000000000000000000000000000000",
		"00000000-0000-0000-0000-00000000000",    // too short
		"00000000x0000-0000-0000-000000000000",   // wrong separator
		"g0000000-0000-0000-0000-000000000000",   // non-hex
		"00000000-0000-0000-0000-000000000000 ",  // trailing space
		"00000000-0000-0000-0000-0000000000000x", // too long
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseAcceptsCanonical(t *testing.T) {
	s := "316b3ab4-2509-4ea7-8025-00ca879dac61"
	u, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if u.String() != s {
		t.Fatalf("String() = %q, want %q", u.String(), s)
	}
}

func TestSeededDeterminism(t *testing.T) {
	a, b := NewSeeded(42), NewSeeded(42)
	for i := 0; i < 50; i++ {
		ua, ub := a.New(), b.New()
		if ua != ub {
			t.Fatalf("seeded generators diverged at %d: %s vs %s", i, ua, ub)
		}
	}
	c := NewSeeded(43)
	if a.New() == c.New() {
		t.Fatal("different seeds produced the same UUID")
	}
}

func TestUniqueness(t *testing.T) {
	seen := make(map[UUID]bool, 10000)
	g := NewSeeded(7)
	for i := 0; i < 10000; i++ {
		u := g.New()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d draws: %s", i, u)
		}
		seen[u] = true
	}
}

func TestNilAndIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if New().IsNil() {
		t.Error("fresh UUID reported nil")
	}
	if Nil.String() != "00000000-0000-0000-0000-000000000000" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	u := New()
	b, err := u.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back UUID
	if err := back.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if back != u {
		t.Fatalf("marshal round trip mismatch: %s != %s", back, u)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of garbage did not panic")
		}
	}()
	MustParse("nope")
}

// Property: String/Parse is an identity over arbitrary byte patterns, and the
// rendered form is always lowercase hex with dashes.
func TestQuickStringParseIdentity(t *testing.T) {
	f := func(raw [16]byte) bool {
		u := UUID(raw)
		s := u.String()
		if strings.ToLower(s) != s {
			return false
		}
		back, err := Parse(s)
		return err == nil && back == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
