package client

// Tenant administration (/v1/tenants): namespace, quota, and token
// management for servers running the multi-tenant control plane. All of
// these require an operator token (set Options.Token).

import "gallery/internal/api"

// CreateNamespace registers a tenant (default-namespace operators only).
func (c *Client) CreateNamespace(req api.CreateNamespaceRequest) (api.TenantNamespace, error) {
	var ns api.TenantNamespace
	err := c.do("POST", "/v1/tenants", req, &ns)
	return ns, err
}

// Namespaces lists the tenants the caller may administer, with usage.
func (c *Client) Namespaces() ([]api.TenantNamespace, error) {
	var resp api.TenantsResponse
	err := c.do("GET", "/v1/tenants", nil, &resp)
	return resp.Namespaces, err
}

// SetQuotas overwrites a namespace's limits.
func (c *Client) SetQuotas(ns string, req api.SetQuotasRequest) (api.TenantNamespace, error) {
	var out api.TenantNamespace
	err := c.do("POST", "/v1/tenants/"+ns+"/quotas", req, &out)
	return out, err
}

// MintToken creates a credential in a namespace. The response carries the
// secret exactly once; it cannot be recovered later.
func (c *Client) MintToken(ns string, req api.MintTokenRequest) (api.MintTokenResponse, error) {
	var resp api.MintTokenResponse
	err := c.do("POST", "/v1/tenants/"+ns+"/tokens", req, &resp)
	return resp, err
}

// Tokens lists a namespace's credentials (metadata only, no secrets).
func (c *Client) Tokens(ns string) ([]api.TenantToken, error) {
	var resp api.TenantTokensResponse
	err := c.do("GET", "/v1/tenants/"+ns+"/tokens", nil, &resp)
	return resp.Tokens, err
}

// RevokeToken invalidates a credential; it is rejected from the very next
// request onward.
func (c *Client) RevokeToken(ns, tokenID string) error {
	return c.do("DELETE", "/v1/tenants/"+ns+"/tokens/"+tokenID, nil, nil)
}
