package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/server"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// MultiTenantResult is E22: what the multi-tenant control plane costs on
// the hot paths, and whether it actually isolates tenants. Three probes:
//
//  1. Predict arm — the same serving handler answers the same prediction
//     storm with auth off and on (identical requests, the off arm simply
//     ignores the bearer header). The claim under test: authentication
//     adds zero heap allocations per request.
//  2. Registry arm — GET /v1/models/{id} against galleryd, auth off vs
//     on, for the metadata-path overhead.
//  3. Noisy neighbor — two tenants on one frozen-clock gateway: "noisy"
//     rate-limited at burst 10, "quiet" unlimited. The noisy tenant's
//     flood must clip at exactly its burst while the quiet tenant loses
//     nothing.
type MultiTenantResult struct {
	PredictOps int

	OffAllocs, OnAllocs float64
	OffP50, OnP50       time.Duration

	RegOps                    int
	RegOffAllocs, RegOnAllocs float64
	RegOffP50, RegOnP50       time.Duration

	NoisySent, NoisyAllowed, NoisyRejected int
	QuietSent, QuietOK                     int
}

// PredictExtraAllocs is the headline number: heap allocations per predict
// request that exist only because auth is on.
func (r *MultiTenantResult) PredictExtraAllocs() float64 { return r.OnAllocs - r.OffAllocs }

// PredictOverhead is the wall-clock cost of auth on the predict path.
func (r *MultiTenantResult) PredictOverhead() time.Duration { return r.OnP50 - r.OffP50 }

// RegistryOverhead is the wall-clock cost of auth on the metadata path.
func (r *MultiTenantResult) RegistryOverhead() time.Duration { return r.RegOnP50 - r.RegOffP50 }

// QuietOKRatio is the quiet tenant's survival rate under the noisy
// tenant's flood — 1.0 means full isolation.
func (r *MultiTenantResult) QuietOKRatio() float64 {
	if r.QuietSent == 0 {
		return 0
	}
	return float64(r.QuietOK) / float64(r.QuietSent)
}

// Format renders E22 as paper-style rows.
func (r *MultiTenantResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predict hot path (%d ops): auth=off p50=%v allocs/op=%.1f; auth=on p50=%v allocs/op=%.1f\n",
		r.PredictOps, r.OffP50.Round(time.Microsecond), r.OffAllocs,
		r.OnP50.Round(time.Microsecond), r.OnAllocs)
	fmt.Fprintf(&b, "  auth overhead: %+.1f allocs/op (target 0), p50 %+dµs (target <2µs)\n",
		r.PredictExtraAllocs(), r.PredictOverhead().Microseconds())
	fmt.Fprintf(&b, "registry GET /v1/models/{id} (%d ops): auth=off p50=%v allocs/op=%.1f; auth=on p50=%v allocs/op=%.1f (overhead %+dµs)\n",
		r.RegOps, r.RegOffP50.Round(time.Microsecond), r.RegOffAllocs,
		r.RegOnP50.Round(time.Microsecond), r.RegOnAllocs, r.RegistryOverhead().Microseconds())
	fmt.Fprintf(&b, "noisy neighbor (frozen clock, noisy burst=10): noisy %d/%d admitted, %d rejected 429; quiet %d/%d ok (isolation %.2f)\n",
		r.NoisyAllowed, r.NoisySent, r.NoisyRejected, r.QuietOK, r.QuietSent, r.QuietOKRatio())
	return b.String()
}

// BenchMetrics emits BENCH_multitenant.json. Allocation counts and the
// rate-limiter's exact admit/reject split are machine-independent and
// gate the baseline; latencies are trajectory info.
func (r *MultiTenantResult) BenchMetrics() []benchfmt.Metric {
	return []benchfmt.Metric{
		// The tentpole claim: zero extra allocs on the authed predict path.
		// Rounded to whole allocations — sub-alloc fractions are warmup
		// jitter, and snapping the healthy value to exactly 0 keeps the
		// baseline on benchfmt's zero-baseline path, where the tolerance is
		// an absolute allowance: any run measuring ≥1 alloc/op of auth cost
		// fails the gate.
		{Name: "predict_auth_extra_allocs_per_op", Unit: "allocs/op", Value: math.Round(r.PredictExtraAllocs()), Better: benchfmt.LowerIsBetter, Tol: 0.5},
		{Name: "predict_auth_on_allocs_per_op", Unit: "allocs/op", Value: r.OnAllocs, Better: benchfmt.LowerIsBetter, Tol: 0.5},
		{Name: "noisy_allowed", Unit: "reqs", Value: float64(r.NoisyAllowed), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "noisy_rejected", Unit: "reqs", Value: float64(r.NoisyRejected), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "quiet_ok_ratio", Value: r.QuietOKRatio(), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "predict_auth_overhead_seconds", Unit: "s", Value: r.PredictOverhead().Seconds(), Better: benchfmt.Info},
		{Name: "registry_auth_overhead_seconds", Unit: "s", Value: r.RegistryOverhead().Seconds(), Better: benchfmt.Info},
		{Name: "registry_auth_extra_allocs_per_op", Unit: "allocs/op", Value: r.RegOnAllocs - r.RegOffAllocs, Better: benchfmt.Info},
	}
}

// MultiTenant runs E22 with n measured ops per hot-path arm.
func MultiTenant(n int) (*MultiTenantResult, error) {
	env, err := NewEnv(47)
	if err != nil {
		return nil, err
	}
	res := &MultiTenantResult{PredictOps: n, RegOps: n}

	// One trained model, promoted, as the serving workload.
	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "tenant_bench", Project: "bench", Name: "bench/demand", Domain: "UberX",
	})
	if err != nil {
		return nil, err
	}
	series := forecast.Generate(forecast.CityConfig{
		Name: "sf", Base: 100, GrowthPerWeek: 3, DailyAmp: 20, WeeklyAmp: 10, NoiseStd: 2, Seed: 47,
	}, epoch, time.Hour, 24*14)
	mdl := &forecast.LinearAR{Lags: 24}
	if err := mdl.Train(series); err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(mdl)
	if err != nil {
		return nil, err
	}
	inst, err := env.Reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "champion", City: "sf"}, blob)
	if err != nil {
		return nil, err
	}
	if err := env.Reg.PromoteInstance(inst.ID); err != nil {
		return nil, err
	}

	// The gateway-side control plane: in-memory store, deterministic ids,
	// frozen mock clock (rate buckets never refill, so admit/reject counts
	// are exact).
	clk := clock.NewMock(epoch)
	tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(48), Obs: obs.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	if err := tm.CreateNamespace(context.Background(), tenant.Namespace{Name: "bench"}); err != nil {
		return nil, err
	}
	if err := tm.CreateNamespace(context.Background(), tenant.Namespace{Name: "noisy", RatePerSec: 1, Burst: 10}); err != nil {
		return nil, err
	}
	if err := tm.CreateNamespace(context.Background(), tenant.Namespace{Name: "quiet"}); err != nil {
		return nil, err
	}
	benchSecret, _, err := tm.MintToken(context.Background(), "bench", "bench-reader", tenant.RoleReader)
	if err != nil {
		return nil, err
	}
	noisySecret, _, err := tm.MintToken(context.Background(), "noisy", "noisy-reader", tenant.RoleReader)
	if err != nil {
		return nil, err
	}
	quietSecret, _, err := tm.MintToken(context.Background(), "quiet", "quiet-reader", tenant.RoleReader)
	if err != nil {
		return nil, err
	}

	// --- predict arm ---
	gw := serve.New(regSource{env.Reg}, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	defer gw.Close()
	hOff := serve.NewHandler(gw)
	hOn := serve.NewHandler(gw, serve.WithAuthorizer(tm))

	hist := series.Values()[len(series)-48:]
	payload, err := json.Marshal(api.PredictRequest{History: hist})
	if err != nil {
		return nil, err
	}
	predictPath := "/v1/predict/" + m.ID.String()
	// Both arms build byte-identical requests — bearer header included —
	// so the measured delta is exactly what the auth middleware adds.
	predictOp := func(h *serve.Handler) error {
		req := httptest.NewRequest(http.MethodPost, predictPath, bytes.NewReader(payload))
		req.Header.Set("Authorization", "Bearer "+benchSecret)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("experiments: predict status %d: %s", rec.Code, rec.Body.String())
		}
		return nil
	}
	if res.OffP50, res.OffAllocs, err = measureHTTP(n, func() error { return predictOp(hOff) }); err != nil {
		return nil, err
	}
	if res.OnP50, res.OnAllocs, err = measureHTTP(n, func() error { return predictOp(hOn) }); err != nil {
		return nil, err
	}

	// --- registry arm ---
	srvOff := server.NewWith(env.Reg, env.Repo, env.Engine, server.Options{Obs: obs.NewRegistry()})
	defer srvOff.Close()
	srvOn := server.NewWith(env.Reg, env.Repo, env.Engine, server.Options{Obs: obs.NewRegistry(), Tenants: tm})
	defer srvOn.Close()
	modelPath := "/v1/models/" + m.ID.String()
	registryOp := func(h http.Handler) error {
		req := httptest.NewRequest(http.MethodGet, modelPath, nil)
		req.Header.Set("Authorization", "Bearer "+benchSecret)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("experiments: get model status %d: %s", rec.Code, rec.Body.String())
		}
		return nil
	}
	if res.RegOffP50, res.RegOffAllocs, err = measureHTTP(n, func() error { return registryOp(srvOff) }); err != nil {
		return nil, err
	}
	if res.RegOnP50, res.RegOnAllocs, err = measureHTTP(n, func() error { return registryOp(srvOn) }); err != nil {
		return nil, err
	}

	// --- noisy neighbor ---
	// The clock is frozen, so the noisy bucket starts full (burst 10) and
	// never refills: of 50 requests exactly 10 must pass. The quiet tenant
	// has no limit and must feel nothing.
	flood := func(secret string, count int) (ok, limited int, err error) {
		for i := 0; i < count; i++ {
			req := httptest.NewRequest(http.MethodGet, "/v1/serving", nil)
			req.Header.Set("Authorization", "Bearer "+secret)
			rec := httptest.NewRecorder()
			hOn.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				if rec.Header().Get("Retry-After") == "" {
					return 0, 0, fmt.Errorf("experiments: 429 without Retry-After")
				}
				limited++
			default:
				return 0, 0, fmt.Errorf("experiments: flood status %d: %s", rec.Code, rec.Body.String())
			}
		}
		return ok, limited, nil
	}
	res.NoisySent = 50
	if res.NoisyAllowed, res.NoisyRejected, err = flood(noisySecret, res.NoisySent); err != nil {
		return nil, err
	}
	res.QuietSent = 50
	quietLimited := 0
	if res.QuietOK, quietLimited, err = flood(quietSecret, res.QuietSent); err != nil {
		return nil, err
	}
	if quietLimited != 0 {
		return nil, fmt.Errorf("experiments: quiet tenant rate-limited %d times by the noisy tenant's flood", quietLimited)
	}
	return res, nil
}

// measureHTTP runs op n times after a warmup, reporting p50 latency and
// exact heap allocations per op (runtime.MemStats.Mallocs delta, as in
// measurePredict). The op includes request/recorder construction; arms
// are compared against an identically-constructed baseline so that
// harness cost cancels in the delta.
func measureHTTP(n int, op func() error) (p50 time.Duration, allocsPerOp float64, err error) {
	for i := 0; i < 50; i++ {
		if err = op(); err != nil {
			return
		}
	}
	lats := make([]time.Duration, n)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range lats {
		t0 := time.Now()
		if err = op(); err != nil {
			return
		}
		lats[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&after)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[n/2], allocsPerOp, nil
}
