package slo

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
	"gallery/internal/wal"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// testConfig keeps windows tiny so burn math is easy to drive by hand:
// tick 1s, fast pair 5s/20s, slow pair 10s/40s. Thresholds are chosen so
// a sharp outage over a healthy baseline trips the fast pair first, like
// the production defaults do.
func testConfig(src *countSource) (Config, *obs.Registry) {
	reg := obs.NewRegistry()
	return Config{
		Tick:       time.Second,
		FastShort:  5 * time.Second,
		FastLong:   20 * time.Second,
		FastBurn:   9.5,
		SlowShort:  10 * time.Second,
		SlowLong:   40 * time.Second,
		SlowBurn:   8,
		MinSamples: 1,
		Clock:      clock.NewMock(t0),
		UUIDs:      uuid.NewSeeded(9),
		Obs:        reg,
	}, reg
}

// countSource hands out settable cumulative totals.
type countSource struct{ good, bad int64 }

func (s *countSource) Counts(Objective) (int64, int64, bool) { return s.good, s.bad, true }

func mustCreate(t *testing.T, s *Service, o Objective) Objective {
	t.Helper()
	out, err := s.Create(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateValidation(t *testing.T) {
	src := &countSource{}
	cfg, _ := testConfig(src)
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Objective{
		{Kind: KindAvailability, Target: 0.99},                                           // no namespace
		{Namespace: "ads", Kind: "availabilty", Target: 0.99},                            // typo kind
		{Namespace: "ads", Kind: KindAvailability, Target: 0},                            // target low
		{Namespace: "ads", Kind: KindAvailability, Target: 1},                            // target high
		{Namespace: "ads", Kind: KindLatency, Target: 0.99},                              // no threshold
		{Namespace: "ads", Kind: KindAvailability, Target: 0.99, LatencyThreshold: 0.25}, // threshold on availability
		{Namespace: "ads", Kind: KindLatency, Target: 0.99, LatencyThreshold: -1},        // negative threshold
	}
	for i, o := range cases {
		if _, err := s.Create(context.Background(), o); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: err = %v, want ErrBadSpec", i, err)
		}
	}
	if err := s.Delete(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(missing) = %v, want ErrNotFound", err)
	}
}

func TestBurnAndRecovery(t *testing.T) {
	src := &countSource{}
	cfg, reg := testConfig(src)
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})
	ctx := context.Background()

	// 30 healthy ticks: 100 requests each, none bad.
	for i := 0; i < 30; i++ {
		src.good += 100
		s.Evaluate(ctx)
	}
	st := s.Statuses()[0]
	if st.Breached || st.BurnFast != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("healthy state = %+v", st)
	}

	// Full outage: every request bad. Fast-short (5 ticks) saturates
	// immediately, but fast-long (20 ticks) mixes in healthy history:
	// after f faulty ticks its bad ratio is 100f/2000, so burn =
	// (f/20)/0.01 = 5f. Breach needs burn >= 9.5 -> f = 2. The slow pair
	// is still held back by slow-long (burn 6.25 < 8 at f = 2), so the
	// first breach carries fast severity.
	src.bad += 100
	s.Evaluate(ctx)
	if s.Statuses()[0].Breached {
		t.Fatal("breached after 1 faulty tick; fast-long should hold it back")
	}
	src.bad += 100
	s.Evaluate(ctx)
	st = s.Statuses()[0]
	if !st.Breached || st.Severity != "fast" {
		t.Fatalf("after 2 faulty ticks: %+v", st)
	}
	if g := reg.Gauge(obs.Name("slo_breached", "slo", o.ID)).Value(); g != 1 {
		t.Fatalf("slo_breached gauge = %v, want 1", g)
	}
	if reg.Counter("slo_burn_events_total").Value() != 1 {
		t.Fatal("expected exactly one burn event")
	}

	// Back to healthy traffic: the windows drain and the breach clears.
	for i := 0; i < 60; i++ {
		src.good += 100
		s.Evaluate(ctx)
	}
	st = s.Statuses()[0]
	if st.Breached {
		t.Fatalf("still breached after recovery: %+v", st)
	}
	if reg.Counter("slo_recovered_events_total").Value() != 1 {
		t.Fatal("expected exactly one recovery event")
	}
	if g := reg.Gauge(obs.Name("slo_breached", "slo", o.ID)).Value(); g != 0 {
		t.Fatalf("slo_breached gauge = %v, want 0", g)
	}
}

func TestModelScopedEventDispatch(t *testing.T) {
	src := &countSource{}
	cfg, _ := testConfig(src)
	instID := uuid.NewSeeded(3).New()
	var events []string
	cfg.Events = sinkFunc(func(ctx context.Context, inst uuid.UUID, event string, fields map[string]any) {
		if inst != instID {
			t.Errorf("event instance = %s, want %s", inst, instID)
		}
		if fields["model"] != "ctr" || fields["namespace"] != "ads" {
			t.Errorf("fields = %v", fields)
		}
		events = append(events, event)
	})
	cfg.Instances = func(modelID string) (uuid.UUID, bool) { return instID, modelID == "ctr" }
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, Objective{Namespace: "ads", ModelID: "ctr", Kind: KindAvailability, Target: 0.99})
	// Namespace-scoped objective must NOT dispatch into the engine even
	// when it breaches alongside.
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		src.good += 100
		s.Evaluate(ctx)
	}
	for i := 0; i < 5; i++ {
		src.bad += 100
		s.Evaluate(ctx)
	}
	if len(events) != 1 || events[0] != "burn" {
		t.Fatalf("events = %v, want [burn]", events)
	}
	for i := 0; i < 60; i++ {
		src.good += 100
		s.Evaluate(ctx)
	}
	if len(events) != 2 || events[1] != "recovered" {
		t.Fatalf("events = %v, want [burn recovered]", events)
	}
}

type sinkFunc func(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]any)

func (f sinkFunc) SLOEvent(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]any) {
	f(ctx, instanceID, event, fields)
}

func TestLatencyObjectiveOverVectors(t *testing.T) {
	reg := obs.NewRegistry()
	lat := reg.HistogramVec("tenant_http_request_seconds", []string{"namespace"}, []float64{0.1, 0.5, 1}, 8)
	src := VecSource{
		Requests: reg.CounterVec("tenant_http_requests_total", []string{"namespace"}, 8),
		Errors:   reg.CounterVec("tenant_http_errors_total", []string{"namespace"}, 8),
		Latency:  lat,
	}
	cfg, _ := testConfig(nil)
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 99% of requests within 100ms.
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindLatency, Target: 0.99, LatencyThreshold: 0.1})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		for j := 0; j < 50; j++ {
			lat.With("ads").Observe(0.01)
		}
		s.Evaluate(ctx)
	}
	if st := s.Statuses()[0]; st.Breached || st.NoData {
		t.Fatalf("fast traffic: %+v", st)
	}
	// Latency regression: everything lands above the threshold.
	for i := 0; i < 5; i++ {
		for j := 0; j < 50; j++ {
			lat.With("ads").Observe(0.9)
		}
		s.Evaluate(ctx)
	}
	if st := s.Statuses()[0]; !st.Breached {
		t.Fatalf("slow traffic never breached: %+v", st)
	}
}

// TestCreateRejectsUnanswerableScope pins the capability probe: an
// objective whose scope this process has no metric source for is
// rejected at Create instead of sitting at no-data forever. This is
// what the registry daemon does with model-scoped objectives — its
// predict RED vectors live in the serving gateway.
func TestCreateRejectsUnanswerableScope(t *testing.T) {
	reg := obs.NewRegistry()
	nsOnly := VecSource{
		Requests: reg.CounterVec("tenant_http_requests_total", []string{"namespace"}, 8),
		Errors:   reg.CounterVec("tenant_http_errors_total", []string{"namespace"}, 8),
		Latency:  reg.HistogramVec("tenant_http_request_seconds", []string{"namespace"}, []float64{0.1, 1}, 8),
	}
	cfg, _ := testConfig(nil)
	s, err := Open(relstore.NewMemory(), nsOnly, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(context.Background(), Objective{
		Namespace: "ads", ModelID: "ctr", Kind: KindAvailability, Target: 0.99,
	}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("model-scoped create over namespace-only source = %v, want ErrNoSource", err)
	}
	// Namespace scope is answerable and stays creatable.
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})

	// Nothing is answerable over an empty source.
	s2, err := Open(relstore.NewMemory(), VecSource{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Create(context.Background(), Objective{
		Namespace: "ads", Kind: KindAvailability, Target: 0.99,
	}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("create over empty source = %v, want ErrNoSource", err)
	}
}

// TestNoDataSource covers the restore path the Create probe cannot
// gate: an objective persisted by a process that could answer it, then
// reopened by one that cannot, reports no-data rather than healthy.
func TestNoDataSource(t *testing.T) {
	store := relstore.NewMemory()
	src := &countSource{}
	cfg, _ := testConfig(src)
	s, err := Open(store, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})

	cfg2, _ := testConfig(nil)
	s2, err := Open(store, VecSource{}, cfg2) // all-nil vectors
	if err != nil {
		t.Fatal(err)
	}
	s2.Evaluate(context.Background())
	if st := s2.Statuses()[0]; !st.NoData || st.Breached {
		t.Fatalf("want no-data, got %+v", st)
	}
}

// TestPartialWindowBlipDoesNotBreach pins the scaled MinSamples floor:
// right after startup every window clamps to the recorded history, so
// without scaling one MinSamples-sized blip satisfies both windows of a
// pair at once and counterfeits a confirmed burn.
func TestPartialWindowBlipDoesNotBreach(t *testing.T) {
	src := &countSource{}
	cfg, _ := testConfig(src)
	cfg.MinSamples = 10
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})
	ctx := context.Background()

	s.Evaluate(ctx) // tick 1: empty baseline
	src.bad += 10   // exactly MinSamples failures, then silence
	s.Evaluate(ctx)
	for i := 0; i < 10; i++ {
		s.Evaluate(ctx)
		if st := s.Statuses()[0]; st.Breached {
			t.Fatalf("startup blip breached at tick %d: %+v", i+3, st)
		}
	}

	// A genuine outage at volume still clears the scaled floor within a
	// few ticks — partial windows evaluate, they just demand the sample
	// mass the full window was calibrated for.
	for i := 0; i < 10; i++ {
		src.bad += 100
		s.Evaluate(ctx)
	}
	if st := s.Statuses()[0]; !st.Breached {
		t.Fatalf("sustained outage never breached: %+v", st)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	store, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := &countSource{}
	cfg, _ := testConfig(src)
	s, err := Open(store, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kept := mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.999})
	dropped := mustCreate(t, s, Objective{Namespace: "maps", Kind: KindLatency, Target: 0.95, LatencyThreshold: 0.25})
	if err := s.Delete(context.Background(), dropped.ID); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := relstore.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cfg2, _ := testConfig(src)
	s2, err := Open(store2, src, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	objs := s2.List()
	if len(objs) != 1 {
		t.Fatalf("recovered %d objectives, want 1", len(objs))
	}
	got := objs[0]
	if got.ID != kept.ID || got.Namespace != "ads" || got.Kind != KindAvailability ||
		got.Target != 0.999 || !got.Created.Equal(kept.Created) {
		t.Fatalf("recovered %+v, want %+v", got, kept)
	}
	if _, err := s2.Get(dropped.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted objective survived reopen: %v", err)
	}
}

func TestDeleteRemovesGauges(t *testing.T) {
	src := &countSource{}
	cfg, reg := testConfig(src)
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})
	src.good = 100
	s.Evaluate(context.Background())
	name := obs.Name("slo_breached", "slo", o.ID)
	if _, ok := reg.Snapshot().Gauges[name]; !ok {
		t.Fatal("gauge not published after Evaluate")
	}
	if err := s.Delete(context.Background(), o.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Snapshot().Gauges[name]; ok {
		t.Fatal("gauge survived Delete")
	}
}

func TestMinSamplesSuppressesThinWindows(t *testing.T) {
	src := &countSource{}
	cfg, _ := testConfig(src)
	cfg.MinSamples = 50
	s, err := Open(relstore.NewMemory(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, Objective{Namespace: "ads", Kind: KindAvailability, Target: 0.99})
	ctx := context.Background()
	// 3 requests per tick, all failing — but under MinSamples, so no burn.
	for i := 0; i < 10; i++ {
		src.bad += 3
		s.Evaluate(ctx)
	}
	if st := s.Statuses()[0]; st.Breached || st.BurnFast != 0 {
		t.Fatalf("thin window should not breach: %+v", st)
	}
}
