package relstore

import (
	"testing"
	"time"
)

// The tests in this file pin the planner's streamed-scan behaviour: when
// an index-driven scan shares its column with ORDER BY the result must
// stream from the index (Explain.Ordered) with Limit stopping the scan
// early, and range scans must seek past equal-value runs instead of
// filtering through them.

func TestDriverScanSharesOrderByColumn(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	cutoff := t0.Add(100 * time.Minute)
	q := Query{
		Table:   "instances",
		Where:   []Constraint{{Field: "created", Op: OpGe, Value: Time(cutoff)}},
		OrderBy: "created", Limit: 10,
	}
	rows, ex, err := s.SelectExplain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "created" || !ex.Ordered {
		t.Fatalf("Explain = %+v, want created index streamed in order", ex)
	}
	if ex.Scanned > 10 {
		t.Fatalf("streamed limit-10 scan examined %d postings", ex.Scanned)
	}
	if len(rows) != 10 || !rows[0]["created"].Time.Equal(cutoff) {
		t.Fatalf("rows = %d, first created = %v", len(rows), rows[0]["created"].Time)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["created"].Time.Before(rows[i-1]["created"].Time) {
			t.Fatal("streamed rows out of ascending order")
		}
	}
}

func TestDriverScanDescStreams(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	cutoff := t0.Add(100 * time.Minute)
	q := Query{
		Table:   "instances",
		Where:   []Constraint{{Field: "created", Op: OpGt, Value: Time(cutoff)}},
		OrderBy: "created", Desc: true, Limit: 10,
	}
	rows, ex, err := s.SelectExplain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered || ex.Scanned > 10 {
		t.Fatalf("desc streamed scan: %+v", ex)
	}
	// Same rows as the forced full scan + sort.
	fq := q
	fq.ForceScan = true
	frows, fex, err := s.SelectExplain(fq)
	if err != nil {
		t.Fatal(err)
	}
	if fex.Ordered {
		t.Fatal("ForceScan claimed a streamed order")
	}
	if len(rows) != len(frows) {
		t.Fatalf("streamed %d rows, sorted %d", len(rows), len(frows))
	}
	for i := range rows {
		if rows[i]["id"].Str != frows[i]["id"].Str {
			t.Fatalf("row %d: streamed %s vs sorted %s", i, rows[i]["id"].Str, frows[i]["id"].Str)
		}
	}
	if !rows[0]["created"].Time.Equal(t0.Add(499 * time.Minute)) {
		t.Fatalf("desc scan started at %v", rows[0]["created"].Time)
	}
}

func TestDriverScanDifferentOrderBySorts(t *testing.T) {
	s := newStore(t)
	fill(t, s, 200)
	_, ex, err := s.SelectExplain(Query{
		Table:   "instances",
		Where:   []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
		OrderBy: "created", Desc: true, Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "city" {
		t.Fatalf("Index = %q", ex.Index)
	}
	if ex.Ordered {
		t.Fatal("sort on a different column reported as streamed")
	}
}

func TestPlannerPrefersOrderByColumnOnRankTie(t *testing.T) {
	s := newStore(t)
	fill(t, s, 300)
	// Two rank-2 range constraints; the one sharing the ORDER BY column
	// must drive so the scan streams.
	_, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{
			{Field: "mape", Op: OpGe, Value: Float(0)},
			{Field: "created", Op: OpGe, Value: Time(t0)},
		},
		OrderBy: "created", Limit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "created" || !ex.Ordered {
		t.Fatalf("tie-break picked %q (ordered=%v), want created streamed", ex.Index, ex.Ordered)
	}
}

func TestOffsetBeyondMatchesOnStreamedPaths(t *testing.T) {
	s := newStore(t)
	fill(t, s, 50)
	for _, q := range []Query{
		// Index-driven streamed scan.
		{Table: "instances",
			Where:   []Constraint{{Field: "created", Op: OpGe, Value: Time(t0)}},
			OrderBy: "created", Offset: 100, Limit: 10},
		// Ordered-index path.
		{Table: "instances", OrderBy: "created", Offset: 100, Limit: 10},
		// Offset exactly at the match count.
		{Table: "instances", OrderBy: "created", Offset: 50},
	} {
		rows, _, err := s.SelectExplain(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 0 {
			t.Fatalf("offset past end returned %d rows for %+v", len(rows), q)
		}
	}
}

func TestOffsetPlusLimitEarlyTermination(t *testing.T) {
	s := newStore(t)
	fill(t, s, 1000)
	// Ordered-index path: scan must stop at offset+limit postings.
	_, ex, err := s.SelectExplain(Query{
		Table: "instances", OrderBy: "created", Offset: 20, Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered || ex.Scanned > 25 {
		t.Fatalf("ordered offset+limit scanned %d, want <=25", ex.Scanned)
	}
	// Index-driven streamed path, descending.
	rows, ex, err := s.SelectExplain(Query{
		Table:   "instances",
		Where:   []Constraint{{Field: "created", Op: OpGe, Value: Time(t0)}},
		OrderBy: "created", Desc: true, Offset: 20, Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered || ex.Scanned > 25 {
		t.Fatalf("streamed desc offset+limit scanned %d, want <=25", ex.Scanned)
	}
	if len(rows) != 5 || !rows[0]["created"].Time.Equal(t0.Add(979*time.Minute)) {
		t.Fatalf("page = %d rows starting %v", len(rows), rows[0]["created"].Time)
	}
}

func TestGtSeeksPastEqualRun(t *testing.T) {
	s := newStore(t)
	// 400 rows share mape 0.5; 20 rows sit above it.
	for i := 0; i < 400; i++ {
		r := row(pad("dup", i), "b", "sf", t0.Add(time.Duration(i)*time.Second), 0.5)
		if err := s.Insert("instances", r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		r := row(pad("hi", i), "b", "sf", t0.Add(time.Duration(1000+i)*time.Second), 0.9)
		if err := s.Insert("instances", r); err != nil {
			t.Fatal(err)
		}
	}
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "mape", Op: OpGt, Value: Float(0.5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("OpGt matched %d rows, want 20", len(rows))
	}
	if ex.Scanned != 20 {
		t.Fatalf("OpGt scanned %d postings; seek past the 400-row equal run broken", ex.Scanned)
	}
	// The boundary itself stays in for OpGe.
	rows, ex, err = s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "mape", Op: OpGe, Value: Float(0.5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 420 || ex.Scanned != 420 {
		t.Fatalf("OpGe rows=%d scanned=%d, want 420/420", len(rows), ex.Scanned)
	}
}

func TestIndexBoundaryRows(t *testing.T) {
	s := newStore(t)
	// Cities chosen to bracket the "sf" prefix on both sides.
	for i, city := range []string{"se", "sea", "sf", "sf", "sfo", "sg", "sz"} {
		r := row(pad("r", i), "b", city, t0.Add(time.Duration(i)*time.Minute), 0.1)
		if err := s.Insert("instances", r); err != nil {
			t.Fatal(err)
		}
	}
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpPrefix, Value: String("sf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("prefix sf matched %d rows, want 3 (sf, sf, sfo)", len(rows))
	}
	// The scan seeks to the run start and stops one posting past it.
	if ex.Index != "city" || ex.Scanned > 4 {
		t.Fatalf("prefix scan: %+v", ex)
	}
	// Exclusive boundaries on each comparison op.
	for _, tc := range []struct {
		op   Op
		want int
	}{
		{OpLt, 2}, // se, sea
		{OpLe, 4}, // + the two sf rows
		{OpGt, 3}, // sfo, sg, sz
		{OpGe, 5}, // + the two sf rows
		{OpEq, 2}, // the two sf rows
		{OpNe, 5}, // everything else, nulls excluded
	} {
		rows, _, err := s.SelectExplain(Query{
			Table: "instances",
			Where: []Constraint{{Field: "city", Op: tc.op, Value: String("sf")}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != tc.want {
			t.Fatalf("%s sf matched %d rows, want %d", tc.op, len(rows), tc.want)
		}
	}
}

func TestNeExcludesNullRows(t *testing.T) {
	s := newStore(t)
	withCity := row("i1", "b", "sf", t0, 0.1)
	if err := s.Insert("instances", withCity); err != nil {
		t.Fatal(err)
	}
	noCity := Row{
		"id":              String("i2"),
		"base_version_id": String("b"),
		"created":         Time(t0),
	}
	if err := s.Insert("instances", noCity); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpNe, Value: String("nyc")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// SQL semantics: NULL <> 'nyc' is unknown, so only i1 matches.
	if len(rows) != 1 || rows[0]["id"].Str != "i1" {
		t.Fatalf("OpNe matched %d rows (%v), want just i1", len(rows), rows)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		ok   bool
	}{
		{"sf", "sg", true},
		{"a\xff", "b", true},
		{"\xff\xff", "", false},
		{"", "", false},
	} {
		got, ok := prefixSuccessor(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("prefixSuccessor(%q) = %q,%v want %q,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestPrefixDescStreams(t *testing.T) {
	s := newStore(t)
	for i, city := range []string{"se", "sf", "sf", "sfo", "sg"} {
		r := row(pad("r", i), "b", city, t0.Add(time.Duration(i)*time.Minute), 0.1)
		if err := s.Insert("instances", r); err != nil {
			t.Fatal(err)
		}
	}
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpPrefix, Value: String("sf")}},
		// ORDER BY the prefix column itself: index order applies.
		OrderBy: "city", Desc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered {
		t.Fatalf("prefix desc not streamed: %+v", ex)
	}
	if len(rows) != 3 || rows[0]["city"].Str != "sfo" {
		t.Fatalf("prefix desc rows: %v", rows)
	}
}

func pad(prefix string, i int) string {
	return prefix + string([]byte{byte('a' + i/26%26), byte('a' + i%26)})
}
