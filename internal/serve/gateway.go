// Package serve is Gallery's real-time prediction serving gateway — the
// consumer side of the paper's architecture (§2, Fig. 2), where a realtime
// prediction service pulls production model instances out of Gallery and
// answers traffic with them. A Gateway watches models' denormalized
// production-version pointers through the Gallery client, fetches and
// deserializes the corresponding instance blobs into forecast learners,
// and serves predictions with:
//
//   - a size-bounded LRU of loaded models, with singleflight loading so a
//     cold model's first burst of requests triggers exactly one fetch;
//   - hot swap on promotion — a refresh loop polls the production pointer
//     and atomically swaps the served learner, so the §4.2 dynamic-
//     switching win (a rule promotes a better instance) reaches traffic
//     within one refresh interval with zero dropped requests;
//   - optional micro-batching of concurrent predictions per model; and
//   - graceful degradation — when galleryd is unreachable the gateway
//     keeps answering from the last-known-good instance and flags the
//     responses stale.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
)

// ErrClosed reports a request arriving after Close.
var ErrClosed = errors.New("serve: gateway closed")

// Source is what the gateway needs from Gallery; *client.Client satisfies
// it. Implementations must be safe for concurrent use.
type Source interface {
	// ProductionVersion returns the promoted version of a model.
	ProductionVersion(modelID string) (api.VersionRecord, error)
	// FetchBlob downloads an instance's serialized learner bytes.
	FetchBlob(instanceID string) ([]byte, error)
}

// AuditSink receives the gateway's lifecycle audit events — today only
// serve.swap, emitted when a hot swap replaces the served learner. The
// gateway has no audit store of its own, so the sink ships events to
// galleryd's trail (POST /v1/audit); *client.Client implements it.
// Reporting is best-effort: a sink failure never blocks or fails a swap.
type AuditSink interface {
	ReportAuditEvent(ctx context.Context, ev api.AuditEvent) error
}

// ctxSource is the optional trace-propagating extension of Source.
// *client.Client implements it; when the source does, gateway loads carry
// the caller's trace context across the wire to galleryd, so one predict
// request shows up as one trace spanning both processes.
type ctxSource interface {
	ProductionVersionCtx(ctx context.Context, modelID string) (api.VersionRecord, error)
	FetchBlobCtx(ctx context.Context, instanceID string) ([]byte, error)
}

// Options tunes a Gateway.
type Options struct {
	// MaxModels bounds the LRU of loaded models (default 64).
	MaxModels int
	// RefreshInterval is the production-pointer poll period (default 5s).
	// Zero uses the default; negative disables the loop (tests drive
	// RefreshAll directly).
	RefreshInterval time.Duration
	// MaxBatch enables micro-batching when > 1: concurrent predictions on
	// one model are grouped and answered by a single vectorized pass.
	MaxBatch int
	// BatchWait is how long a partially filled batch lingers for more
	// requests. Zero means drain-only batching: a batch is whatever is
	// already queued when an executor becomes free, adding no latency.
	BatchWait time.Duration
	// BatchWorkers is the number of executor goroutines per model
	// (default 4), so batching adds parallelism rather than serializing.
	BatchWorkers int
	// Loader resolves learner kinds (default forecast.DefaultLoader).
	Loader *forecast.Loader
	// Obs receives gateway metrics; nil uses obs.Default.
	Obs *obs.Registry
	// Tracer, when set, lets background gateway work (hot-swap refreshes,
	// batch drains) start traces of its own, subject to its sampler.
	// Request traces do not need it — they ride the caller's context.
	Tracer *trace.Tracer
	// Name identifies this gateway in flushed health observations
	// (default "gateway").
	Name string
	// HealthSink, when set, turns on continuous model-health recording:
	// per-model sketches of predicted values and latencies plus
	// request/stale counts, flushed every HealthInterval. Nil keeps the
	// predict hot path free of any recording work.
	HealthSink HealthSink
	// HealthInterval is the observation-window length (default 15s).
	// Zero uses the default; negative disables the flush loop (tests
	// drive FlushHealth directly).
	HealthInterval time.Duration
	// AuditSink, when set, reports hot swaps to Gallery's lifecycle
	// audit trail. Nil disables reporting.
	AuditSink AuditSink
}

// served is one immutable loaded-model snapshot. Swaps replace the whole
// value behind an atomic pointer, so a prediction in flight keeps the
// learner it started with and never observes a torn state.
type served struct {
	learner  forecast.Model
	learnerN string // learner.Name(), computed once at load
	version  api.VersionRecord
	loadedAt time.Time
}

// entry is one model slot in the gateway's LRU.
type entry struct {
	modelID string
	el      *list.Element

	// ready is closed when the initial load resolves; loadErr is only
	// read after that. Requests racing the first load wait here —
	// singleflight without a second map.
	ready   chan struct{}
	loadErr error

	cur   atomic.Pointer[served]
	stale atomic.Bool
	swaps atomic.Int64
	batch *batcher // nil when batching is off; set before ready closes

	// lastOK is the unix-nano time of the last successful load or
	// refresh, feeding the per-model refresh-age gauge.
	lastOK atomic.Int64
	// mxStale is this model's dedicated stale-serve counter.
	mxStale *obs.Counter
	// health is the model's live observation window; nil when health
	// recording is off.
	health *entryHealth
}

// Gateway serves predictions from Gallery production instances.
type Gateway struct {
	src    Source
	opts   Options
	loader *forecast.Loader
	obs    *obs.Registry
	tracer *trace.Tracer // may be nil; every use is nil-safe

	mu      sync.Mutex
	entries map[string]*entry
	ll      *list.List // front = most recently used

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mx gatewayMetrics
}

type gatewayMetrics struct {
	loads           *obs.Counter
	loadErrs        *obs.Counter
	swaps           *obs.Counter
	evictions       *obs.Counter
	refreshes       *obs.Counter
	refreshErrs     *obs.Counter
	predicts        *obs.Counter
	predictErrs     *obs.Counter
	stale           *obs.Counter
	latency         *obs.Histogram
	batchSize       *obs.Histogram
	loadedModels    *obs.Gauge
	healthFlushes   *obs.Counter
	healthFlushErrs *obs.Counter
	auditErrs       *obs.Counter
}

// batchSizeBuckets covers batch sizes 1..256.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// New builds a Gateway and starts its refresh loop (unless disabled).
func New(src Source, opts Options) *Gateway {
	if opts.MaxModels <= 0 {
		opts.MaxModels = 64
	}
	if opts.RefreshInterval == 0 {
		opts.RefreshInterval = 5 * time.Second
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = 4
	}
	if opts.Loader == nil {
		opts.Loader = forecast.DefaultLoader
	}
	if opts.Obs == nil {
		opts.Obs = obs.Default
	}
	// Build-info and uptime gauges, same contract as galleryd: one
	// scrape (or incident bundle) identifies the binary it came from.
	obs.RegisterRuntime(opts.Obs)
	if opts.Name == "" {
		opts.Name = "gateway"
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 15 * time.Second
	}
	g := &Gateway{
		src:     src,
		opts:    opts,
		loader:  opts.Loader,
		obs:     opts.Obs,
		tracer:  opts.Tracer,
		entries: make(map[string]*entry),
		ll:      list.New(),
		done:    make(chan struct{}),
		mx: gatewayMetrics{
			loads:           opts.Obs.Counter("serve_model_loads_total"),
			loadErrs:        opts.Obs.Counter("serve_model_load_errors_total"),
			swaps:           opts.Obs.Counter("serve_hot_swaps_total"),
			evictions:       opts.Obs.Counter("serve_evictions_total"),
			refreshes:       opts.Obs.Counter("serve_refreshes_total"),
			refreshErrs:     opts.Obs.Counter("serve_refresh_errors_total"),
			predicts:        opts.Obs.Counter("serve_predictions_total"),
			predictErrs:     opts.Obs.Counter("serve_prediction_errors_total"),
			stale:           opts.Obs.Counter("serve_stale_predictions_total"),
			latency:         opts.Obs.Histogram("serve_predict_seconds", obs.LatencyBuckets),
			batchSize:       opts.Obs.Histogram("serve_batch_size", batchSizeBuckets),
			loadedModels:    opts.Obs.Gauge("serve_loaded_models"),
			healthFlushes:   opts.Obs.Counter("serve_health_flushes_total"),
			healthFlushErrs: opts.Obs.Counter("serve_health_flush_errors_total"),
			auditErrs:       opts.Obs.Counter("serve_audit_report_errors_total"),
		},
	}
	if opts.RefreshInterval > 0 {
		g.wg.Add(1)
		go g.refreshLoop()
	}
	if opts.HealthSink != nil && opts.HealthInterval > 0 {
		g.wg.Add(1)
		go g.healthLoop()
	}
	return g
}

// Close stops the refresh loop and the batch executors. In-flight
// predictions finish; later ones fail with ErrClosed.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.done) })
	g.wg.Wait()
}

// Predict answers one forecast query from modelID's production instance,
// loading it on first use.
func (g *Gateway) Predict(modelID string, fctx forecast.Context) (api.PredictResponse, error) {
	return g.PredictCtx(context.Background(), modelID, fctx)
}

// PredictCtx is Predict with trace attribution. When the caller's context
// carries a span, a "serve.predict" child records whether the model was
// resident (cache=hit), mid-load by another request (coalesced), or
// loaded by this one (miss), and the load's Gallery calls propagate the
// trace to galleryd. With no span in ctx the path is allocation-free.
func (g *Gateway) PredictCtx(ctx context.Context, modelID string, fctx forecast.Context) (api.PredictResponse, error) {
	start := time.Now()
	ctx, span := trace.Start(ctx, "serve.predict")
	if span != nil {
		span.Annotate("model", modelID)
	}
	e, cache, err := g.entry(ctx, modelID)
	if span != nil {
		span.Annotate("cache", cache)
	}
	if err != nil {
		g.mx.predictErrs.Inc()
		span.EndErr(err)
		return api.PredictResponse{}, err
	}
	var (
		value float64
		srv   *served
	)
	if e.batch != nil {
		value, srv, err = e.batch.predict(fctx)
		if err != nil {
			g.mx.predictErrs.Inc()
			span.EndErr(err)
			return api.PredictResponse{}, err
		}
	} else {
		srv = e.cur.Load()
		value = srv.learner.Forecast(fctx)
	}
	stale := e.stale.Load()
	g.mx.predicts.Inc()
	if stale {
		g.mx.stale.Inc()
		e.mxStale.Inc()
	}
	if e.health != nil {
		e.health.record(value, time.Since(start).Seconds(), stale)
	}
	g.mx.latency.ObserveSinceExemplar(start, span.TraceIDString())
	span.End()
	return api.PredictResponse{
		ModelID:    modelID,
		InstanceID: srv.version.InstanceID,
		VersionID:  srv.version.ID,
		Version:    srv.version.Version,
		Learner:    srv.learnerN,
		Value:      value,
		Stale:      stale,
	}, nil
}

// entry returns the (loaded) slot for modelID, creating and loading it if
// new. Exactly one goroutine performs a given model's load; the rest wait.
// The second return reports how the slot was found: "hit", "coalesced"
// (another request's load was in flight), or "miss".
func (g *Gateway) entry(ctx context.Context, modelID string) (*entry, string, error) {
	g.mu.Lock()
	if e, ok := g.entries[modelID]; ok {
		g.ll.MoveToFront(e.el)
		g.mu.Unlock()
		cache := "hit"
		select {
		case <-e.ready:
		default:
			cache = "coalesced"
			<-e.ready
		}
		if e.loadErr != nil {
			return nil, cache, e.loadErr
		}
		return e, cache, nil
	}
	select {
	case <-g.done:
		g.mu.Unlock()
		return nil, "miss", ErrClosed
	default:
	}
	e := &entry{modelID: modelID, ready: make(chan struct{})}
	e.mxStale = g.obs.Counter(obs.Name("serve_stale_serves_total", "model", modelID))
	if g.opts.HealthSink != nil {
		e.health = newEntryHealth(time.Now())
	}
	e.el = g.ll.PushFront(e)
	g.entries[modelID] = e
	var evicted []*entry
	for len(g.entries) > g.opts.MaxModels {
		back := g.ll.Back()
		if back == nil || back == e.el {
			break
		}
		old := back.Value.(*entry)
		g.ll.Remove(back)
		delete(g.entries, old.modelID)
		evicted = append(evicted, old)
	}
	g.mx.loadedModels.Set(float64(len(g.entries)))
	g.mu.Unlock()
	for _, old := range evicted {
		g.mx.evictions.Inc()
		// An entry can be evicted while its initial load is still in
		// flight; batch is only settled once ready closes, so tear it down
		// from a goroutine that waits for that instead of racing the loader.
		go func(old *entry) {
			<-old.ready
			if old.batch != nil {
				old.batch.stop()
			}
			// Drop the evicted model's refresh-age gauge unless the model
			// was re-admitted in the meantime (the new slot re-registers
			// its own closure; a lost race here only leaves a gauge
			// reading the old slot until the next load).
			g.mu.Lock()
			_, resurrected := g.entries[old.modelID]
			g.mu.Unlock()
			if !resurrected {
				g.obs.RemoveGaugeFunc(obs.Name("serve_refresh_age_seconds", "model", old.modelID))
			}
		}(old)
	}

	// Load outside the lock: the fetch can take a while and must not
	// block predictions on other models.
	srv, err := g.load(ctx, modelID)
	if err != nil {
		g.mx.loadErrs.Inc()
		e.loadErr = err
		close(e.ready)
		// Drop the failed slot so a later request retries the load.
		g.mu.Lock()
		if g.entries[modelID] == e {
			g.ll.Remove(e.el)
			delete(g.entries, modelID)
			g.mx.loadedModels.Set(float64(len(g.entries)))
		}
		g.mu.Unlock()
		return nil, "miss", err
	}
	e.cur.Store(srv)
	if g.opts.MaxBatch > 1 {
		e.batch = newBatcher(e, g)
	}
	e.lastOK.Store(time.Now().UnixNano())
	close(e.ready)
	g.mx.loads.Inc()
	g.setVersionGauge(e, &srv.version)
	g.registerAgeGauge(e)
	return e, "miss", nil
}

// registerAgeGauge publishes how long ago a model last confirmed its
// production pointer — the operator's "how stale could this answer be"
// number. The closure reads one atomic, so it is safe under the metric
// registry's snapshot lock.
func (g *Gateway) registerAgeGauge(e *entry) {
	g.obs.GaugeFunc(obs.Name("serve_refresh_age_seconds", "model", e.modelID), func() float64 {
		ns := e.lastOK.Load()
		if ns == 0 {
			return -1
		}
		return time.Since(time.Unix(0, ns)).Seconds()
	})
}

// productionVersion resolves a model's promoted version, propagating the
// trace when the source supports it.
func (g *Gateway) productionVersion(ctx context.Context, modelID string) (api.VersionRecord, error) {
	if cs, ok := g.src.(ctxSource); ok {
		return cs.ProductionVersionCtx(ctx, modelID)
	}
	return g.src.ProductionVersion(modelID)
}

// fetchBlob downloads an instance blob, propagating the trace when the
// source supports it.
func (g *Gateway) fetchBlob(ctx context.Context, instanceID string) ([]byte, error) {
	if cs, ok := g.src.(ctxSource); ok {
		return cs.FetchBlobCtx(ctx, instanceID)
	}
	return g.src.FetchBlob(instanceID)
}

// load resolves a model's production pointer to a deserialized learner.
func (g *Gateway) load(ctx context.Context, modelID string) (srv *served, err error) {
	ctx, span := trace.Start(ctx, "serve.load")
	if span != nil {
		span.Annotate("model", modelID)
		defer func() { span.EndErr(err) }()
	}
	v, err := g.productionVersion(ctx, modelID)
	if err != nil {
		return nil, fmt.Errorf("serve: production version of model %s: %w", modelID, err)
	}
	if v.InstanceID == "" {
		return nil, fmt.Errorf("serve: production version %s of model %s carries no instance", v.ID, modelID)
	}
	blob, err := g.fetchBlob(ctx, v.InstanceID)
	if err != nil {
		return nil, fmt.Errorf("serve: fetch blob of instance %s: %w", v.InstanceID, err)
	}
	learner, err := g.loader.Load(blob)
	if err != nil {
		return nil, fmt.Errorf("serve: instance %s: %w", v.InstanceID, err)
	}
	if span != nil {
		span.AnnotateInt("blob_bytes", int64(len(blob)))
		span.Annotate("learner", learner.Name())
	}
	return &served{
		learner:  learner,
		learnerN: learner.Name(),
		version:  v,
		loadedAt: time.Now(),
	}, nil
}

// refreshLoop polls production pointers until Close.
func (g *Gateway) refreshLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-t.C:
			g.RefreshAll()
		}
	}
}

// RefreshAll re-checks every loaded model's production pointer once,
// hot-swapping any whose promoted instance changed. Exported so tests and
// operators can force a refresh instead of waiting out the interval.
func (g *Gateway) RefreshAll() {
	g.mu.Lock()
	es := make([]*entry, 0, len(g.entries))
	for _, e := range g.entries {
		es = append(es, e)
	}
	g.mu.Unlock()
	for _, e := range es {
		select {
		case <-e.ready:
		default:
			continue // initial load still in flight
		}
		if e.loadErr == nil {
			g.refresh(e)
		}
	}
}

// refresh re-checks one model. Any failure leaves the current learner
// serving and marks the model stale — degradation, not an outage. When the
// gateway has a tracer, each refresh may start a trace of its own (no
// inbound request exists to ride), so hot swaps are attributable end to
// end: the swap's Gallery calls carry the trace to galleryd.
func (g *Gateway) refresh(e *entry) {
	ctx, span := g.tracer.StartLocal(context.Background(), "serve.refresh")
	if span != nil {
		span.Annotate("model", e.modelID)
	}
	g.mx.refreshes.Inc()
	v, err := g.productionVersion(ctx, e.modelID)
	if err != nil {
		e.stale.Store(true)
		g.mx.refreshErrs.Inc()
		span.EndErr(err)
		return
	}
	cur := e.cur.Load()
	if cur != nil && cur.version.ID == v.ID {
		e.stale.Store(false)
		e.lastOK.Store(time.Now().UnixNano())
		if span != nil {
			span.Annotate("swap", "false")
		}
		span.End()
		return
	}
	if v.InstanceID == "" {
		e.stale.Store(true)
		g.mx.refreshErrs.Inc()
		span.Fail("production version carries no instance")
		span.End()
		return
	}
	blob, err := g.fetchBlob(ctx, v.InstanceID)
	if err != nil {
		e.stale.Store(true)
		g.mx.refreshErrs.Inc()
		span.EndErr(err)
		return
	}
	learner, err := g.loader.Load(blob)
	if err != nil {
		e.stale.Store(true)
		g.mx.refreshErrs.Inc()
		span.EndErr(err)
		return
	}
	e.cur.Store(&served{
		learner:  learner,
		learnerN: learner.Name(),
		version:  v,
		loadedAt: time.Now(),
	})
	e.swaps.Add(1)
	e.stale.Store(false)
	e.lastOK.Store(time.Now().UnixNano())
	if e.health != nil {
		// Discard the in-progress window: one window must not mix two
		// instances' output distributions.
		e.health.reset(time.Now())
	}
	g.mx.swaps.Inc()
	g.setVersionGauge(e, &v)
	g.reportSwap(ctx, e.modelID, cur, &v, span)
	if span != nil {
		span.Annotate("swap", "true")
		span.Annotate("version", v.Version)
	}
	span.End()
}

// reportSwap ships one serve.swap audit event to the configured sink. The
// gateway runs without a DAL, so this is how hot swaps reach the same
// trail as the promotions that caused them — joined by model ID and by
// the refresh trace. Best-effort: failures count, never block.
func (g *Gateway) reportSwap(ctx context.Context, modelID string, prev *served, v *api.VersionRecord, span *trace.Span) {
	if g.opts.AuditSink == nil {
		return
	}
	before := "none"
	if prev != nil {
		before = fmt.Sprintf("v%s (%s)", prev.version.Version, prev.version.InstanceID)
	}
	ev := api.AuditEvent{
		Actor:      "gateway:" + g.opts.Name,
		Action:     audit.ActionServeSwap,
		EntityType: audit.EntityInstance,
		EntityID:   v.InstanceID,
		ModelID:    modelID,
		Before:     before,
		After:      fmt.Sprintf("v%s (%s)", v.Version, v.InstanceID),
		TraceID:    span.TraceIDString(),
	}
	if err := g.opts.AuditSink.ReportAuditEvent(ctx, ev); err != nil {
		g.mx.auditErrs.Inc()
	}
}

// setVersionGauge publishes which version a model serves, encoded as
// major*1000 + minor so promotions show up as visible steps.
func (g *Gateway) setVersionGauge(e *entry, v *api.VersionRecord) {
	g.obs.Gauge(obs.Name("serve_served_version", "model", e.modelID)).
		Set(float64(v.Major)*1000 + float64(v.Minor))
}

// Status snapshots every loaded model.
func (g *Gateway) Status() []api.ServingModel {
	g.mu.Lock()
	es := make([]*entry, 0, len(g.entries))
	for el := g.ll.Front(); el != nil; el = el.Next() {
		es = append(es, el.Value.(*entry))
	}
	g.mu.Unlock()
	out := make([]api.ServingModel, 0, len(es))
	for _, e := range es {
		select {
		case <-e.ready:
		default:
			continue
		}
		srv := e.cur.Load()
		if srv == nil {
			continue
		}
		out = append(out, api.ServingModel{
			ModelID:    e.modelID,
			InstanceID: srv.version.InstanceID,
			VersionID:  srv.version.ID,
			Version:    srv.version.Version,
			Learner:    srv.learnerN,
			LoadedAt:   srv.loadedAt,
			Swaps:      e.swaps.Load(),
			Stale:      e.stale.Load(),
		})
	}
	return out
}
