package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gallery/internal/uuid"
)

// fakeTrain deterministically derives "model bytes" from the recorded
// recipe, standing in for a real training pipeline: same recipe + same
// seed => same bytes.
func fakeTrain(recipe *Instance) ([]byte, error) {
	if recipe.TrainingData == "" {
		return nil, errors.New("no training data pointer recorded")
	}
	rng := rand.New(rand.NewSource(recipe.Seed))
	out := []byte(fmt.Sprintf("model(%s|%s|%d|", recipe.TrainingData, recipe.Hyperparams, recipe.Epochs))
	for i := 0; i < 32; i++ {
		out = append(out, byte(rng.Intn(256)))
	}
	return out, nil
}

func TestReproduceExactWithSeed(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "repro")
	// Upload the blob the pipeline would have produced.
	spec := InstanceSpec{
		ModelID: m.ID, Name: "forecaster", City: "sf",
		Framework: "fake", TrainingData: "hdfs://data/v7",
		CodePointer: "git://train@abc", Seed: 42, Epochs: 10,
		Hyperparams: `{"lags":24}`, Features: "hour,dow",
	}
	pipelineOut, err := fakeTrain(&Instance{
		TrainingData: spec.TrainingData, Hyperparams: spec.Hyperparams,
		Epochs: spec.Epochs, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := h.g.UploadInstance(spec, pipelineOut)
	if err != nil {
		t.Fatal(err)
	}

	rep, rebuilt, err := h.g.Reproduce(in.ID, fakeTrain)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatalf("rebuild not exact: %+v", rep)
	}
	if len(rebuilt) != rep.RebuiltSize || rep.RebuiltSize != rep.OriginalSize {
		t.Fatalf("sizes inconsistent: %+v", rep)
	}
	if len(rep.RecipeGaps) != 0 {
		t.Fatalf("gaps = %v", rep.RecipeGaps)
	}
}

func TestReproduceInexactWithoutSeedControl(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "repro")
	spec := InstanceSpec{
		ModelID: m.ID, TrainingData: "hdfs://data/v7", Seed: 42,
		Hyperparams: `{"lags":24}`, Epochs: 10,
	}
	orig, err := fakeTrain(&Instance{TrainingData: spec.TrainingData,
		Hyperparams: spec.Hyperparams, Epochs: spec.Epochs, Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	in, err := h.g.UploadInstance(spec, orig)
	if err != nil {
		t.Fatal(err)
	}
	// A trainer that ignores the recorded seed — the paper's "randomness
	// introduced in training" case.
	uncontrolled := func(recipe *Instance) ([]byte, error) {
		cp := *recipe
		cp.Seed = recipe.Seed + 1
		return fakeTrain(&cp)
	}
	rep, _, err := h.g.Reproduce(in.ID, uncontrolled)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact {
		t.Fatal("uncontrolled randomness reproduced exactly")
	}
	if rep.OriginalSize != rep.RebuiltSize {
		t.Fatalf("same recipe shape should give same size: %+v", rep)
	}
}

func TestReproduceReportsRecipeGaps(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "repro")
	in, err := h.g.UploadInstance(InstanceSpec{
		ModelID: m.ID, TrainingData: "hdfs://data/v7", Seed: 1,
	}, []byte("whatever"))
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := h.g.Reproduce(in.ID, func(recipe *Instance) ([]byte, error) {
		return []byte("rebuilt"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RecipeGaps) == 0 {
		t.Fatal("missing metadata not surfaced")
	}
}

func TestReproduceTrainerFailure(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "repro")
	in, err := h.g.UploadInstance(InstanceSpec{ModelID: m.ID}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.g.Reproduce(in.ID, fakeTrain); err == nil {
		t.Fatal("trainer failure not propagated")
	}
}

func TestReproduceUnknownInstance(t *testing.T) {
	h := newHarness(t)
	if _, _, err := h.g.Reproduce(uuid.New(), fakeTrain); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
