package obslog

import (
	"context"
	"log/slog"
	"testing"

	"gallery/internal/obs/trace"
)

func TestRingBoundedAndOrdered(t *testing.T) {
	r := NewRing(4)
	h := NewHandler(r, slog.LevelDebug, nil)
	logger := slog.New(h)
	for i := 0; i < 10; i++ {
		logger.Info("line", "i", i)
	}
	if r.Len() != 4 {
		t.Fatalf("ring retained %d, want 4", r.Len())
	}
	entries, next := r.Entries(Filter{MinLevel: slog.LevelDebug})
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(entries))
	}
	for i, e := range entries {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d (oldest lines evicted)", i, e.Seq, want)
		}
	}
	if next != 9 {
		t.Errorf("next seq = %d, want 9", next)
	}
	// Poll for new lines only.
	logger.Warn("fresh")
	entries, _ = r.Entries(Filter{MinLevel: slog.LevelDebug, AfterSeq: next, HasAfterSeq: true})
	if len(entries) != 1 || entries[0].Msg != "fresh" {
		t.Fatalf("after-seq poll got %+v, want just the fresh line", entries)
	}
}

func TestLevelAndSinceFilters(t *testing.T) {
	r := NewRing(16)
	logger := slog.New(NewHandler(r, slog.LevelDebug, nil))
	logger.Debug("d")
	logger.Info("i")
	logger.Error("e")

	entries, _ := r.Entries(Filter{MinLevel: slog.LevelWarn})
	if len(entries) != 1 || entries[0].Level != "error" {
		t.Fatalf("level filter got %+v, want the error line only", entries)
	}
	all, _ := r.Entries(Filter{MinLevel: slog.LevelDebug})
	if len(all) != 3 {
		t.Fatalf("got %d entries, want 3", len(all))
	}
	cut := all[2].Time
	entries, _ = r.Entries(Filter{MinLevel: slog.LevelDebug, Since: cut})
	for _, e := range entries {
		if e.Time.Before(cut) {
			t.Errorf("since filter leaked entry at %v before %v", e.Time, cut)
		}
	}
}

func TestDisabledLevelAllocatesNothing(t *testing.T) {
	logger := slog.New(NewHandler(NewRing(8), slog.LevelInfo, nil))
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		logger.LogAttrs(ctx, slog.LevelDebug, "disabled")
	})
	if allocs != 0 {
		t.Fatalf("disabled level cost %.1f allocs/op, want 0", allocs)
	}
}

func TestTraceCorrelation(t *testing.T) {
	tr := trace.New(trace.Options{Service: "test", Sampler: mustSampler(t, "always")})
	ctx, span := tr.StartRoot(context.Background(), "op", "")
	defer span.End()

	r := NewRing(8)
	logger := slog.New(NewHandler(r, slog.LevelDebug, nil))

	// Context-carried span.
	logger.InfoContext(ctx, "via ctx")
	// Explicit attribute, the httpmw access-log convention.
	logger.Info("via attr", "trace_id", "deadbeefdeadbeefdeadbeefdeadbeef")

	entries, _ := r.Entries(Filter{MinLevel: slog.LevelDebug})
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if got, want := entries[0].TraceID, span.TraceIDString(); got != want {
		t.Errorf("ctx entry trace id = %q, want %q", got, want)
	}
	if entries[1].TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Errorf("attr entry trace id = %q, want promoted from trace_id attr", entries[1].TraceID)
	}
}

func mustSampler(t *testing.T, spec string) trace.Sampler {
	t.Helper()
	s, err := trace.ParseSampler(spec)
	if err != nil {
		t.Fatalf("ParseSampler(%q): %v", spec, err)
	}
	return s
}

func TestTeeAndWithAttrs(t *testing.T) {
	r := NewRing(8)
	sinkRing := NewRing(8)
	downstream := NewHandler(sinkRing, slog.LevelWarn, nil)
	logger := slog.New(NewHandler(r, slog.LevelDebug, downstream)).With("component", "dal")

	logger.Info("cached")
	logger.Error("failed", "err", "boom")

	entries, _ := r.Entries(Filter{MinLevel: slog.LevelDebug})
	if len(entries) != 2 {
		t.Fatalf("primary ring got %d entries, want 2", len(entries))
	}
	if entries[0].Attrs["component"] != "dal" {
		t.Errorf("WithAttrs lost component attr: %+v", entries[0].Attrs)
	}
	if entries[1].Attrs["err"] != "boom" {
		t.Errorf("record attr lost: %+v", entries[1].Attrs)
	}
	teed, _ := sinkRing.Entries(Filter{MinLevel: slog.LevelDebug})
	if len(teed) != 1 || teed[0].Level != "error" {
		t.Fatalf("downstream tee got %+v, want the error line only (its own level gate applies)", teed)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "WARN": slog.LevelWarn,
		"error": slog.LevelError, "": slog.LevelInfo, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
