package expr

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func env() *Env {
	return &Env{
		Vars: map[string]any{
			"model_name":   "linear_regression",
			"model_domain": "UberX",
			"environment":  "production",
			"metrics": map[string]any{
				"r2":   0.93,
				"bias": 0.05,
				"mae":  4.2,
			},
			"epoch":      int64(12),
			"deprecated": false,
		},
	}
}

func evalOK(t *testing.T, src string) any {
	t.Helper()
	v, err := Eval(src, env())
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestLiterals(t *testing.T) {
	cases := map[string]any{
		"42":       42.0,
		"3.14":     3.14,
		".5":       0.5,
		"'hello'":  "hello",
		`"world"`:  "world",
		"true":     true,
		"false":    false,
		"null":     nil,
		`'it\'s'`:  "it's",
		`"a\nb"`:   "a\nb",
		`'tab\tx'`: "tab\tx",
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("Eval(%q) = %#v, want %#v", src, got, want)
		}
	}
}

func TestPaperListing1Condition(t *testing.T) {
	// The model-selection rule from paper Listing 1.
	got := evalOK(t, `model_name == "linear_regression" && model_domain == "UberX" && metrics["r2"] <= 0.9`)
	if got != false { // r2 = 0.93 > 0.9
		t.Fatalf("listing 1 condition = %v", got)
	}
}

func TestPaperListing2Condition(t *testing.T) {
	// The action rule from paper Listing 2.
	got := evalOK(t, `model_domain == "UberX" && metrics.bias <= 0.1 && metrics.bias >= -0.1`)
	if got != true {
		t.Fatalf("listing 2 condition = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2*3":         7,
		"(1 + 2) * 3":     9,
		"10 / 4":          2.5,
		"10 % 3":          1,
		"-5 + 3":          -2,
		"--5":             5,
		"2 * epoch":       24,
		"metrics.mae - 4": 0.2,
	}
	for src, want := range cases {
		got := evalOK(t, src)
		if f, ok := got.(float64); !ok || math.Abs(f-want) > 1e-9 {
			t.Errorf("Eval(%q) = %#v, want %v", src, got, want)
		}
	}
}

func TestStringConcat(t *testing.T) {
	if got := evalOK(t, `"fore" + 'casting'`); got != "forecasting" {
		t.Fatalf("concat = %#v", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":                         true,
		"2 <= 2":                        true,
		"3 > 4":                         false,
		"4 >= 4":                        true,
		"'a' < 'b'":                     true,
		"'b' <= 'a'":                    false,
		"1 == 1.0":                      true,
		"1 != 2":                        true,
		"'x' == 'x'":                    true,
		"'x' == 1":                      false,
		"null == null":                  true,
		"null == 0":                     false,
		"true && false":                 false,
		"true || false":                 true,
		"!true":                         false,
		"not false":                     true,
		"true and true":                 true,
		"false or true":                 true,
		"epoch == 12":                   true,
		"deprecated == false":           true,
		"metrics.r2 > 0.9 && epoch > 5": true,
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("Eval(%q) = %#v, want %v", src, got, want)
		}
	}
}

func TestListsAndInOperator(t *testing.T) {
	cases := map[string]any{
		`model_domain in ["UberX", "UberPool"]`:   true,
		`model_domain in ["UberBlack"]`:           false,
		`"x" in []`:                               false,
		`2 in [1, 2, 3]`:                          true,
		`4 in [1, 2, 3]`:                          false,
		`epoch in [11, 12]`:                       true,
		`"bias" in metrics`:                       true,
		`"missing" in metrics`:                    false,
		`model_domain in ["UberX"] && epoch > 10`: true,
		`1 + 1 in [2]`:                            true, // + binds tighter than in
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("Eval(%q) = %#v, want %#v", src, got, want)
		}
	}
	// Errors.
	for _, src := range []string{
		"1 in 2",          // not a container
		"1 in metrics",    // non-string key into object
		"x in [1",         // unterminated list
		`[1,2] in [1, 2]`, // lists are not comparable elements, just false
	} {
		if _, err := Eval(src, env()); err == nil && src != `[1,2] in [1, 2]` {
			t.Errorf("Eval(%q) succeeded", src)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side references an unknown variable; short-circuit must
	// prevent evaluation.
	if got := evalOK(t, "false && bogus_variable > 1"); got != false {
		t.Fatalf("&& short circuit = %v", got)
	}
	if got := evalOK(t, "true || bogus_variable > 1"); got != true {
		t.Fatalf("|| short circuit = %v", got)
	}
	// Without short circuit the unknown variable is an error.
	if _, err := Eval("true && bogus_variable > 1", env()); err == nil {
		t.Fatal("unknown variable on evaluated branch did not error")
	}
}

func TestMemberAndIndexEquivalence(t *testing.T) {
	a := evalOK(t, "metrics.bias")
	b := evalOK(t, `metrics["bias"]`)
	if a != b {
		t.Fatalf("metrics.bias = %v, metrics[\"bias\"] = %v", a, b)
	}
}

func TestBuiltins(t *testing.T) {
	cases := map[string]any{
		"abs(-3.5)":                        3.5,
		"min(3, 1, 2)":                     1.0,
		"max(3, 1, 2)":                     3.0,
		`has(metrics, "r2")`:               true,
		`has(metrics, "missing")`:          false,
		`contains("forecasting", "cast")`:  true,
		`startsWith(model_domain, "Uber")`: true,
		`abs(metrics.bias) <= 0.1`:         true,
		"floor(2.7)":                       2.0,
		"ceil(2.1)":                        3.0,
		"round(2.5)":                       3.0,
		"round(-2.5)":                      -3.0,
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("Eval(%q) = %#v, want %#v", src, got, want)
		}
	}
}

func TestCustomFunctions(t *testing.T) {
	e := env()
	e.Funcs = map[string]Func{
		"double": func(args []any) (any, error) {
			f, ok := normalize(args[0]).(float64)
			if !ok {
				return nil, fmt.Errorf("not a number")
			}
			return 2 * f, nil
		},
	}
	v, err := Eval("double(epoch) == 24", e)
	if err != nil {
		t.Fatal(err)
	}
	if v != true {
		t.Fatalf("double(epoch) == 24 evaluated to %v", v)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "a.", "a[", "a[1", "f(", "f(1,", "1 = 2",
		"a & b", "a | b", "'unterminated", `"bad \q escape"`, "@", "1..2",
		"3.", "max(,)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error type = %T", src, err)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"unknown_var",
		"metrics.nope",
		`metrics["nope"]`,
		"model_name.field", // member of non-object
		"metrics[42]",      // non-string index
		"1 / 0",
		"5 % 0",
		"!'str'",
		"-'str'",
		"1 && true",
		"'a' < 1",
		"unknownFn(1)",
		"model_name + 1", // string + number
	}
	for _, src := range bad {
		if _, err := Eval(src, env()); err == nil {
			t.Errorf("Eval(%q) succeeded", src)
		} else {
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Errorf("Eval(%q) error type = %T (%v)", src, err, err)
			}
		}
	}
}

func TestEvalBool(t *testing.T) {
	b, err := EvalBool("metrics.bias <= 0.1", env())
	if err != nil || !b {
		t.Fatalf("EvalBool = %v, %v", b, err)
	}
	if _, err := EvalBool("1 + 1", env()); err == nil {
		t.Fatal("EvalBool accepted a numeric expression")
	}
}

func TestPrecedence(t *testing.T) {
	// || binds loosest, then &&, then comparisons, then + -, then * /.
	cases := map[string]any{
		"true || false && false": true, // && first
		"1 + 2 < 2 + 2":          true, // + before <
		"2 + 3 * 4 == 14":        true, // * before +
		"false == 1 > 2":         true, // > before ==
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("Eval(%q) = %#v, want %#v", src, got, want)
		}
	}
}

func TestIdents(t *testing.T) {
	n := MustParse(`model_name == "x" && metrics.bias < threshold && has(metadata, "k")`)
	got := Idents(n)
	sort.Strings(got)
	want := []string{"metadata", "metrics", "model_name", "threshold"}
	if len(got) != len(want) {
		t.Fatalf("Idents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Idents = %v, want %v", got, want)
		}
	}
}

func TestNodeString(t *testing.T) {
	// String must render back to something that parses to the same result.
	srcs := []string{
		`model_name == "linear_regression" && metrics["r2"] <= 0.9`,
		"abs(metrics.bias) <= 0.1 || epoch > 10",
		"-(1 + 2) * 3 < 0",
	}
	for _, src := range srcs {
		n := MustParse(src)
		rendered := n.String()
		n2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, src, err)
		}
		v1, err1 := n.eval(env())
		v2, err2 := n2.eval(env())
		if (err1 == nil) != (err2 == nil) || v1 != v2 {
			t.Fatalf("%q and its rendering %q disagree: %v/%v vs %v/%v",
				src, rendered, v1, err1, v2, err2)
		}
	}
}

// Property: integer arithmetic expressions evaluate exactly.
func TestQuickArithmetic(t *testing.T) {
	f := func(a, b int16) bool {
		src := fmt.Sprintf("%d + %d * 2", a, b)
		v, err := Eval(src, nil)
		if err != nil {
			return false
		}
		return v == float64(a)+float64(b)*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison operators agree with Go's on random pairs.
func TestQuickComparisons(t *testing.T) {
	f := func(a, b int16) bool {
		for _, tc := range []struct {
			op   string
			want bool
		}{
			{"<", a < b}, {"<=", a <= b}, {">", a > b}, {">=", a >= b},
			{"==", a == b}, {"!=", a != b},
		} {
			v, err := Eval(fmt.Sprintf("%d %s %d", a, tc.op, b), nil)
			if err != nil || v != tc.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing never panics on arbitrary input.
func TestQuickParseNoPanic(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", src, r)
			}
		}()
		Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
