package httpmw

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gallery/internal/audit"
)

// fakeAuthorizer returns a canned decision per bearer secret.
type fakeAuthorizer struct {
	decisions map[string]Decision
}

func (f *fakeAuthorizer) Authorize(r *http.Request) Decision {
	return f.decisions[r.Header.Get("Authorization")]
}

func TestWithAuth(t *testing.T) {
	var gotActor string
	var ran bool
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ran = true
		gotActor = audit.ActorFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	})
	h := WithAuth(next, &fakeAuthorizer{decisions: map[string]Decision{
		"Bearer ok":      {},
		"Bearer writer":  {Actor: "maps/alice"},
		"Bearer nope":    {Status: http.StatusUnauthorized, Reason: "unknown token"},
		"Bearer flooded": {Status: http.StatusTooManyRequests, Reason: "rate limited", RetryAfter: 3},
	}})

	t.Run("admit", func(t *testing.T) {
		ran, gotActor = false, ""
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/v1/models", nil)
		req.Header.Set("Authorization", "Bearer ok")
		h.ServeHTTP(rec, req)
		if !ran || rec.Code != http.StatusOK {
			t.Fatalf("ran=%v code=%d", ran, rec.Code)
		}
		if gotActor != "" {
			t.Fatalf("read-class admit stamped actor %q", gotActor)
		}
	})

	t.Run("admit with actor", func(t *testing.T) {
		ran, gotActor = false, ""
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/models", nil)
		req.Header.Set("Authorization", "Bearer writer")
		h.ServeHTTP(rec, req)
		if !ran {
			t.Fatal("handler did not run")
		}
		if gotActor != "maps/alice" {
			t.Fatalf("actor = %q, want maps/alice", gotActor)
		}
	})

	t.Run("reject", func(t *testing.T) {
		ran = false
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/models", nil)
		req.Header.Set("Authorization", "Bearer nope")
		h.ServeHTTP(rec, req)
		if ran {
			t.Fatal("handler ran on a rejected request")
		}
		if rec.Code != http.StatusUnauthorized {
			t.Fatalf("code = %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("body %q: %v", rec.Body.String(), err)
		}
		if body.Error != "unknown token" {
			t.Fatalf("error = %q", body.Error)
		}
	})

	t.Run("rate limited", func(t *testing.T) {
		ran = false
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/v1/serving", nil)
		req.Header.Set("Authorization", "Bearer flooded")
		h.ServeHTTP(rec, req)
		if ran || rec.Code != http.StatusTooManyRequests {
			t.Fatalf("ran=%v code=%d", ran, rec.Code)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "3" {
			t.Fatalf("Retry-After = %q, want 3", ra)
		}
	})
}
