// Package audit implements Gallery's durable lifecycle audit trail: an
// append-only audit_events table in the metadata store recording every
// mutation — model and instance creation, promotion, deprecation, rule
// firings, health status transitions, serving hot swaps — each event
// carrying the actor, a before→after summary, and the active trace ID so
// events join log lines and /v1/debug/traces on one key.
//
// The table rides the same relational store (and therefore the same WAL)
// as the rest of the metadata, so the trail survives crashes and restarts
// with no machinery of its own: replay rebuilds it, and the sequence
// counter resumes past the highest recovered event. Retention is per
// entity — the newest Keep events for each entity id survive pruning, so
// a churning model cannot starve the history of a quiet one.
package audit

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Table is the audit trail's table in the metadata store.
const Table = "audit_events"

// Entity types an event can reference.
const (
	EntityModel     = "model"
	EntityInstance  = "instance"
	EntityRule      = "rule"
	EntityNamespace = "namespace"
	EntitySLO       = "slo"
)

// Actions recorded by the built-in emission hooks. The set is open:
// callers may record domain-specific actions of their own.
const (
	ActionModelRegister     = "model.register"
	ActionModelEvolve       = "model.evolve"
	ActionModelDeprecate    = "model.deprecate"
	ActionDepAdd            = "model.dep_add"
	ActionDepRemove         = "model.dep_remove"
	ActionInstanceUpload    = "instance.upload"
	ActionUploadFailed      = "instance.upload_failed"
	ActionInstanceDeprecate = "instance.deprecate"
	ActionPromote           = "version.promote"
	ActionRuleFire          = "rule.fire"
	ActionHealthTransition  = "health.transition"
	ActionServeSwap         = "serve.swap"
	ActionBlobServeFailed   = "blob.serve_failed"
	ActionAuthDenied        = "auth.denied"
	ActionSLOCreate         = "slo.create"
	ActionSLODelete         = "slo.delete"
	ActionSLOBurn           = "slo.burn"
	ActionSLORecovered      = "slo.recovered"
)

// Event is one audit record. EntityID names the most specific entity the
// mutation acted on; ModelID (when set) is the owning model, so a model's
// timeline also surfaces what happened to its instances.
type Event struct {
	ID         string
	Seq        int64
	Time       time.Time
	Actor      string
	Action     string
	EntityType string
	EntityID   string
	ModelID    string
	Before     string
	After      string
	Detail     string
	TraceID    string
}

// Schema returns the audit_events relational schema. Secondary indexes
// cover the three query axes the API exposes: by entity, by action, and
// by time; model_id joins instance events into model timelines and seq
// gives ordered scans an index to stream.
func Schema() relstore.Schema {
	return relstore.Schema{
		Table: Table,
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "seq", Kind: relstore.KindInt},
			{Name: "created", Kind: relstore.KindTime},
			{Name: "actor", Kind: relstore.KindString},
			{Name: "action", Kind: relstore.KindString},
			{Name: "entity_type", Kind: relstore.KindString},
			{Name: "entity_id", Kind: relstore.KindString},
			{Name: "model_id", Kind: relstore.KindString, Nullable: true},
			{Name: "before", Kind: relstore.KindString, Nullable: true},
			{Name: "after", Kind: relstore.KindString, Nullable: true},
			{Name: "detail", Kind: relstore.KindString, Nullable: true},
			{Name: "trace_id", Kind: relstore.KindString, Nullable: true},
		},
		Key:     "id",
		Indexes: []string{"entity_id", "action", "created", "model_id", "seq"},
	}
}

// Options configures a Log.
type Options struct {
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// UUIDs defaults to the crypto/rand generator.
	UUIDs *uuid.Generator
	// Keep bounds the events retained per entity id; older events are
	// pruned as new ones land. 0 uses DefaultKeep; negative disables
	// pruning.
	Keep int
	// Obs receives the audit_events_total counters; nil uses obs.Default.
	Obs *obs.Registry
}

// DefaultKeep is the per-entity retention bound when Options.Keep is 0.
const DefaultKeep = 256

// Log is the append-only audit trail over one metadata store. It is safe
// for concurrent use; Record calls are serialized so one entity's
// timeline order is exactly the order callers observed.
type Log struct {
	store *relstore.Store
	clk   clock.Clock
	gen   *uuid.Generator
	keep  int
	reg   *obs.Registry

	cErrs   *obs.Counter
	cPruned *obs.Counter

	mu  sync.Mutex
	seq int64
}

// Open declares the audit_events table on store (idempotent over a
// recovered store) and resumes the event sequence past the highest
// recovered event.
func Open(store *relstore.Store, opts Options) (*Log, error) {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.UUIDs == nil {
		opts.UUIDs = uuid.NewGenerator()
	}
	if opts.Keep == 0 {
		opts.Keep = DefaultKeep
	}
	if opts.Obs == nil {
		opts.Obs = obs.Default
	}
	if err := store.CreateTable(Schema()); err != nil {
		return nil, err
	}
	l := &Log{
		store:   store,
		clk:     opts.Clock,
		gen:     opts.UUIDs,
		keep:    opts.Keep,
		reg:     opts.Obs,
		cErrs:   opts.Obs.Counter("audit_events_errors_total"),
		cPruned: opts.Obs.Counter("audit_events_pruned_total"),
	}
	// Crash recovery: WAL replay already rebuilt the table; find where the
	// sequence left off so new events extend the timeline, never fork it.
	rows, err := store.Select(relstore.Query{Table: Table, OrderBy: "seq", Desc: true, Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 {
		l.seq = rows[0]["seq"].Int
	}
	return l, nil
}

// Record appends one event. Zero fields are stamped: ID and Seq are
// assigned, Time defaults to the clock, Actor falls back to the context
// actor (see WithActor) and then "system", and TraceID is taken from the
// context's active span when unset. Recording also prunes the entity's
// history down to the retention bound.
func (l *Log) Record(ctx context.Context, ev Event) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if ev.Action == "" || ev.EntityID == "" {
		l.cErrs.Inc()
		return fmt.Errorf("audit: event needs an action and an entity id (got action=%q entity=%q)", ev.Action, ev.EntityID)
	}
	if ev.Time.IsZero() {
		ev.Time = l.clk.Now()
	}
	if ev.Actor == "" {
		ev.Actor = ActorFrom(ctx)
	}
	if ev.Actor == "" {
		ev.Actor = "system"
	}
	if ev.TraceID == "" {
		ev.TraceID = trace.FromContext(ctx).TraceIDString()
	}
	ev.ID = l.gen.New().String()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if err := l.store.InsertCtx(ctx, Table, eventToRow(ev)); err != nil {
		l.seq-- // the sequence number was never durably used
		l.cErrs.Inc()
		return err
	}
	l.reg.Counter(obs.Name("audit_events_total", "action", ev.Action)).Inc()
	if l.keep > 0 {
		if n, err := l.pruneLocked(ctx, ev.EntityID, l.keep); err == nil && n > 0 {
			l.cPruned.Add(int64(n))
		}
	}
	return nil
}

// Query filters audit events. All set fields AND together; Where adds raw
// relstore constraints for the API's field/operator/value search.
type Query struct {
	EntityID string
	ModelID  string
	Action   string
	Actor    string
	TraceID  string
	Since    time.Time // events at or after this instant
	Until    time.Time // events before this instant
	Where    []relstore.Constraint
	Limit    int  // 0 = unlimited
	Desc     bool // newest first when true
}

// Events returns matching events ordered by sequence.
func (l *Log) Events(q Query) ([]Event, error) {
	where := q.Where
	addEq := func(field, val string) {
		if val != "" {
			where = append(where, relstore.Constraint{Field: field, Op: relstore.OpEq, Value: relstore.String(val)})
		}
	}
	addEq("entity_id", q.EntityID)
	addEq("model_id", q.ModelID)
	addEq("action", q.Action)
	addEq("actor", q.Actor)
	addEq("trace_id", q.TraceID)
	if !q.Since.IsZero() {
		where = append(where, relstore.Constraint{Field: "created", Op: relstore.OpGe, Value: relstore.Time(q.Since)})
	}
	if !q.Until.IsZero() {
		where = append(where, relstore.Constraint{Field: "created", Op: relstore.OpLt, Value: relstore.Time(q.Until)})
	}
	rows, err := l.store.Select(relstore.Query{
		Table:   Table,
		Where:   where,
		OrderBy: "seq",
		Desc:    q.Desc,
		Limit:   q.Limit,
	})
	if err != nil {
		return nil, err
	}
	return rowsToEvents(rows)
}

// EntityTimeline returns the lineage timeline for one entity, oldest
// first: every event acting on it directly plus — when the id is a
// model's — events on its instances (joined through model_id). A positive
// limit keeps the newest events.
func (l *Log) EntityTimeline(entityID string, limit int) ([]Event, error) {
	direct, err := l.Events(Query{EntityID: entityID})
	if err != nil {
		return nil, err
	}
	owned, err := l.Events(Query{ModelID: entityID})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(direct))
	for _, ev := range direct {
		seen[ev.ID] = true
	}
	out := direct
	for _, ev := range owned {
		if !seen[ev.ID] {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out, nil
}

// Prune drops an entity's oldest events beyond keep and reports how many
// were deleted.
func (l *Log) Prune(ctx context.Context, entityID string, keep int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pruneLocked(ctx, entityID, keep)
}

func (l *Log) pruneLocked(ctx context.Context, entityID string, keep int) (int, error) {
	if keep <= 0 {
		return 0, nil
	}
	rows, err := l.store.Select(relstore.Query{
		Table:   Table,
		Where:   []relstore.Constraint{{Field: "entity_id", Op: relstore.OpEq, Value: relstore.String(entityID)}},
		OrderBy: "seq",
	})
	if err != nil {
		return 0, err
	}
	excess := len(rows) - keep
	if excess <= 0 {
		return 0, nil
	}
	muts := make([]relstore.Mutation, 0, excess)
	for _, r := range rows[:excess] {
		muts = append(muts, relstore.Mutation{Kind: relstore.MutDelete, Table: Table, PK: r["id"].Str})
	}
	if err := l.store.BatchCtx(ctx, muts); err != nil {
		return 0, err
	}
	return excess, nil
}

// Len reports the total number of retained events.
func (l *Log) Len() int {
	n, _ := l.store.Len(Table)
	return n
}

// --- actor propagation ---

type actorKey struct{}

// WithActor stamps the acting principal (API caller, subsystem name) on a
// context; every audit event recorded under it inherits the actor unless
// one is set explicitly.
func WithActor(ctx context.Context, actor string) context.Context {
	if actor == "" {
		return ctx
	}
	return context.WithValue(ctx, actorKey{}, actor)
}

// ActorFrom returns the context's actor, or "".
func ActorFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	a, _ := ctx.Value(actorKey{}).(string)
	return a
}

// --- row conversion ---

func eventToRow(ev Event) relstore.Row {
	return relstore.Row{
		"id":          relstore.String(ev.ID),
		"seq":         relstore.Int(ev.Seq),
		"created":     relstore.Time(ev.Time),
		"actor":       relstore.String(ev.Actor),
		"action":      relstore.String(ev.Action),
		"entity_type": relstore.String(ev.EntityType),
		"entity_id":   relstore.String(ev.EntityID),
		"model_id":    relstore.String(ev.ModelID),
		"before":      relstore.String(ev.Before),
		"after":       relstore.String(ev.After),
		"detail":      relstore.String(ev.Detail),
		"trace_id":    relstore.String(ev.TraceID),
	}
}

func rowToEvent(r relstore.Row) Event {
	return Event{
		ID:         r["id"].Str,
		Seq:        r["seq"].Int,
		Time:       r["created"].Time,
		Actor:      r["actor"].Str,
		Action:     r["action"].Str,
		EntityType: r["entity_type"].Str,
		EntityID:   r["entity_id"].Str,
		ModelID:    r["model_id"].Str,
		Before:     r["before"].Str,
		After:      r["after"].Str,
		Detail:     r["detail"].Str,
		TraceID:    r["trace_id"].Str,
	}
}

func rowsToEvents(rows []relstore.Row) ([]Event, error) {
	out := make([]Event, 0, len(rows))
	for _, r := range rows {
		out = append(out, rowToEvent(r))
	}
	return out, nil
}

func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ { // insertion sort: inputs are near-sorted merges
		for j := i; j > 0 && evs[j].Seq < evs[j-1].Seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
