package rules_test

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// Example wires the full Figure 8 workflow: commit the paper's Listing 2
// action rule, register a deployment callback, and watch a metric update
// trigger the deployment.
func Example() {
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(3),
	})
	if err != nil {
		log.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	engine := rules.NewEngine(reg, repo, clk)

	engine.RegisterAction("forecasting_deployment", func(ctx *rules.ActionContext) error {
		fmt.Printf("deploying %s (bias %.2f)\n", ctx.Instance.Name, ctx.Metrics["bias"])
		return nil
	})

	rule := &rules.Rule{
		UUID:    "4365754a-92bb-4421-a1be-00d7d87f77a0",
		Team:    "forecasting",
		Kind:    rules.KindAction,
		Given:   `model_domain == "UberX" && model_name == "Random Forest"`,
		When:    "metrics.bias <= 0.1 && metrics.bias >= -0.1",
		Actions: []rules.ActionRef{{Action: "forecasting_deployment"}},
	}
	if _, err := repo.Commit("forecasting", "listing 2", []*rules.Rule{rule}, nil); err != nil {
		log.Fatal(err)
	}

	m, _ := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "uberx_rf", Name: "Random Forest", Domain: "UberX",
	})
	in, _ := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "rf-v1"}, []byte("blob"))

	if _, err := reg.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.05); err != nil {
		log.Fatal(err)
	}
	engine.MetricUpdated(in.ID) // the Fig. 8 Client 2 event
	// Output: deploying rf-v1 (bias 0.05)
}
