// Package server exposes the Gallery registry and rule engine as a
// stateless JSON/HTTP microservice — the reproduction's stand-in for the
// paper's Thrift service (§4, §4.1). All state lives in the storage layer,
// so any number of server processes can front the same stores, matching
// the paper's "stateless microservice ... horizontally scalable" design.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"gallery/internal/api"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// Server wires HTTP routes to the registry and rule engine.
type Server struct {
	reg    *core.Registry
	repo   *rules.Repo
	engine *rules.Engine
	mux    *http.ServeMux
}

// New builds a Server. The engine may be nil for storage-only deployments
// (feature tiers 1–3 of paper §6.3); rule endpoints then return 404.
func New(reg *core.Registry, repo *rules.Repo, engine *rules.Engine) *Server {
	s := &Server{reg: reg, repo: repo, engine: engine, mux: http.NewServeMux()}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	m := s.mux
	m.HandleFunc("POST /v1/models", s.handleRegisterModel)
	m.HandleFunc("GET /v1/models/{id}", s.handleGetModel)
	m.HandleFunc("GET /v1/models", s.handleModelsByBase)
	m.HandleFunc("POST /v1/models/{id}/evolve", s.handleEvolveModel)
	m.HandleFunc("GET /v1/models/{id}/evolution", s.handleEvolution)
	m.HandleFunc("POST /v1/models/{id}/deprecate", s.handleDeprecateModel)
	m.HandleFunc("GET /v1/models/{id}/versions", s.handleVersions)
	m.HandleFunc("GET /v1/models/{id}/production", s.handleProductionVersion)
	m.HandleFunc("GET /v1/models/{id}/upstreams", s.handleUpstreams)
	m.HandleFunc("GET /v1/models/{id}/downstreams", s.handleDownstreams)
	m.HandleFunc("POST /v1/versions/{id}/promote", s.handlePromote)
	m.HandleFunc("POST /v1/deps", s.handleAddDep)
	m.HandleFunc("DELETE /v1/deps", s.handleRemoveDep)

	m.HandleFunc("POST /v1/instances", s.handleUploadInstance)
	m.HandleFunc("GET /v1/instances/{id}", s.handleGetInstance)
	m.HandleFunc("GET /v1/instances/{id}/blob", s.handleGetBlob)
	m.HandleFunc("POST /v1/instances/{id}/deprecate", s.handleDeprecateInstance)
	m.HandleFunc("POST /v1/instances/{id}/metrics", s.handleInsertMetric)
	m.HandleFunc("POST /v1/instances/{id}/metricset", s.handleInsertMetrics)
	m.HandleFunc("GET /v1/instances/{id}/metrics", s.handleMetricSeries)
	m.HandleFunc("POST /v1/instances/{id}/drift", s.handleDrift)
	m.HandleFunc("POST /v1/instances/{id}/skew", s.handleSkew)

	m.HandleFunc("POST /v1/instances/{id}/metricsblob", s.handleInsertMetricsBlob)
	m.HandleFunc("POST /v1/health/fleet", s.handleFleetHealth)

	m.HandleFunc("POST /v1/search", s.handleSearch)
	m.HandleFunc("GET /v1/lineage/{base}", s.handleLineage)
	m.HandleFunc("GET /v1/stats", s.handleStats)

	m.HandleFunc("POST /v1/rules", s.handleCommitRules)
	m.HandleFunc("GET /v1/rules", s.handleListRules)
	m.HandleFunc("POST /v1/rules/{id}/select", s.handleSelect)
	m.HandleFunc("GET /v1/alerts", s.handleAlerts)
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNotFound), errors.Is(err, relstore.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrBadSpec), errors.Is(err, rules.ErrInvalidRule):
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrCycle), errors.Is(err, relstore.ErrDuplicate):
		status = http.StatusConflict
	}
	writeJSON(w, status, api.Error{Error: err.Error()})
}

func decode(r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", core.ErrBadSpec, err)
	}
	return nil
}

func pathUUID(r *http.Request, name string) (uuid.UUID, error) {
	u, err := uuid.Parse(r.PathValue(name))
	if err != nil {
		return uuid.Nil, fmt.Errorf("%w: bad %s: %v", core.ErrBadSpec, name, err)
	}
	return u, nil
}

// --- models ---

func (s *Server) handleRegisterModel(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterModelRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	spec := core.ModelSpec{
		BaseVersionID: req.BaseVersionID,
		Project:       req.Project,
		Name:          req.Name,
		Owner:         req.Owner,
		Team:          req.Team,
		Domain:        req.Domain,
		Description:   req.Description,
		InitialMajor:  req.InitialMajor,
	}
	for _, up := range req.Upstreams {
		u, err := uuid.Parse(up)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad upstream id %q", core.ErrBadSpec, up))
			return
		}
		spec.Upstreams = append(spec.Upstreams, u)
	}
	m, err := s.reg.RegisterModel(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, modelDTO(m))
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.GetModel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTO(m))
}

func (s *Server) handleModelsByBase(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("base_version_id")
	if base == "" {
		writeErr(w, fmt.Errorf("%w: base_version_id query parameter required", core.ErrBadSpec))
		return
	}
	ms, err := s.reg.ModelsByBase(base)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTOs(ms))
}

func (s *Server) handleEvolveModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.EvolveModelRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.EvolveModel(id, req.Description)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, modelDTO(m))
}

func (s *Server) handleEvolution(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	chain, err := s.reg.Evolution(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTOs(chain))
}

func (s *Server) handleDeprecateModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.DeprecateModel(id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	vs, err := s.reg.VersionHistory(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]api.VersionRecord, len(vs))
	for i, v := range vs {
		out[i] = versionDTO(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProductionVersion(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	v, err := s.reg.ProductionVersion(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, versionDTO(v))
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.Promote(id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUpstreams(w http.ResponseWriter, r *http.Request)   { s.handleDeps(w, r, true) }
func (s *Server) handleDownstreams(w http.ResponseWriter, r *http.Request) { s.handleDeps(w, r, false) }

func (s *Server) handleDeps(w http.ResponseWriter, r *http.Request, up bool) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var ids []uuid.UUID
	if up {
		ids, err = s.reg.Upstreams(id)
	} else {
		ids, err = s.reg.Downstreams(id)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]string, len(ids))
	for i, u := range ids {
		out[i] = u.String()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAddDep(w http.ResponseWriter, r *http.Request) {
	from, to, err := depPair(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.AddDependency(from, to); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRemoveDep(w http.ResponseWriter, r *http.Request) {
	from, to, err := depPair(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.RemoveDependency(from, to); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func depPair(r *http.Request) (from, to uuid.UUID, err error) {
	var req api.DependencyRequest
	if err := decode(r, &req); err != nil {
		return uuid.Nil, uuid.Nil, err
	}
	from, err = uuid.Parse(req.From)
	if err != nil {
		return uuid.Nil, uuid.Nil, fmt.Errorf("%w: bad from id", core.ErrBadSpec)
	}
	to, err = uuid.Parse(req.To)
	if err != nil {
		return uuid.Nil, uuid.Nil, fmt.Errorf("%w: bad to id", core.ErrBadSpec)
	}
	return from, to, nil
}

// --- instances ---

func (s *Server) handleUploadInstance(w http.ResponseWriter, r *http.Request) {
	var req api.UploadInstanceRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	modelID, err := uuid.Parse(req.ModelID)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad model_id", core.ErrBadSpec))
		return
	}
	in, err := s.reg.UploadInstance(core.InstanceSpec{
		ModelID:      modelID,
		Name:         req.Name,
		City:         req.City,
		Framework:    req.Framework,
		TrainingData: req.TrainingData,
		CodePointer:  req.CodePointer,
		Seed:         req.Seed,
		Epochs:       req.Epochs,
		Hyperparams:  req.Hyperparams,
		Features:     req.Features,
	}, req.Blob)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, instanceDTO(in))
}

func (s *Server) handleGetInstance(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	in, err := s.reg.GetInstance(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTO(in))
}

func (s *Server) handleGetBlob(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	data, err := s.reg.FetchBlob(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleDeprecateInstance(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.DeprecateInstance(id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInsertMetric(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.InsertMetricRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.InsertMetric(id, req.Name, core.Scope(req.Scope), req.Value)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Metric updates are rule-engine events (paper Fig. 8, Client 2).
	if s.engine != nil {
		s.engine.MetricUpdated(id)
	}
	writeJSON(w, http.StatusCreated, metricDTO(m))
}

func (s *Server) handleInsertMetrics(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.InsertMetricsRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.InsertMetrics(id, core.Scope(req.Scope), req.Values); err != nil {
		writeErr(w, err)
		return
	}
	if s.engine != nil {
		s.engine.MetricUpdated(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetricSeries(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	ms, err := s.reg.MetricSeries(id, q.Get("name"), core.Scope(q.Get("scope")))
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]api.Metric, len(ms))
	for i, m := range ms {
		out[i] = metricDTO(m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.DriftRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckDrift(id, core.DriftConfig{
		Metric: req.Metric, Window: req.Window, Baseline: req.Baseline, Threshold: req.Threshold,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.DriftReport{
		InstanceID:   rep.InstanceID.String(),
		Metric:       rep.Metric,
		BaselineMean: rep.BaselineMean,
		RecentMean:   rep.RecentMean,
		Degradation:  rep.Degradation,
		Drifted:      rep.Drifted,
		Samples:      rep.Samples,
	})
}

func (s *Server) handleSkew(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.SkewRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckSkew(id, core.SkewConfig{Metric: req.Metric, Threshold: req.Threshold})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SkewReport{
		InstanceID:   rep.InstanceID.String(),
		Metric:       rep.Metric,
		OfflineScope: string(rep.OfflineScope),
		Offline:      rep.Offline,
		Production:   rep.Production,
		Gap:          rep.Gap,
		Skewed:       rep.Skewed,
		Checked:      rep.Checked,
	})
}

// handleInsertMetricsBlob accepts the paper's raw "<metric>:<value>" blob
// format (§3.3.3); the scope travels as a query parameter.
func (s *Server) handleInsertMetricsBlob(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	scope := core.Scope(r.URL.Query().Get("scope"))
	blob, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: read metrics blob: %v", core.ErrBadSpec, err))
		return
	}
	if err := s.reg.InsertMetricsBlob(id, scope, blob); err != nil {
		writeErr(w, err)
		return
	}
	if s.engine != nil {
		s.engine.MetricUpdated(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	var req api.FleetHealthRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckFleetHealth(core.FleetHealthConfig{
		Project: req.Project,
		Metric:  req.Metric,
		Drift: core.DriftConfig{
			Metric: req.Metric, Window: req.Drift.Window,
			Baseline: req.Drift.Baseline, Threshold: req.Drift.Threshold,
		},
		Skew:  core.SkewConfig{Metric: req.Metric, Threshold: req.Skew.Threshold},
		Limit: req.Limit,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	out := api.FleetHealth{
		Project: rep.Project, Total: rep.Total, Drifted: rep.Drifted,
		Skewed: rep.Skewed, LowMetadata: rep.LowMetadata, MissingMetrics: rep.MissingMetrics,
	}
	for _, ih := range rep.Instances {
		out.Instances = append(out.Instances, api.InstanceHealth{
			InstanceID:   ih.InstanceID.String(),
			ModelName:    ih.ModelName,
			City:         ih.City,
			Completeness: ih.Completeness,
			HasMetrics:   ih.HasMetrics,
			Drift: api.DriftReport{
				InstanceID: ih.InstanceID.String(), Metric: ih.Drift.Metric,
				BaselineMean: ih.Drift.BaselineMean, RecentMean: ih.Drift.RecentMean,
				Degradation: ih.Drift.Degradation, Drifted: ih.Drift.Drifted, Samples: ih.Drift.Samples,
			},
			Skew: api.SkewReport{
				InstanceID: ih.InstanceID.String(), Metric: ih.Skew.Metric,
				OfflineScope: string(ih.Skew.OfflineScope), Offline: ih.Skew.Offline,
				Production: ih.Skew.Production, Gap: ih.Skew.Gap,
				Skewed: ih.Skew.Skewed, Checked: ih.Skew.Checked,
			},
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// --- search / lineage / stats ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req api.SearchRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	filter, err := FilterFromSearch(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	ins, err := s.reg.SearchInstances(filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTOs(ins))
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	base := r.PathValue("base")
	ins, err := s.reg.Lineage(base)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTOs(ins))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	models, instances, metrics := s.reg.Counts()
	writeJSON(w, http.StatusOK, api.Stats{Models: models, Instances: instances, Metrics: metrics})
}

// --- rules ---

func (s *Server) handleCommitRules(w http.ResponseWriter, r *http.Request) {
	if s.repo == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	var req api.CommitRulesRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var upserts []*rules.Rule
	for _, raw := range req.Upserts {
		rule, err := rules.ParseRule(raw)
		if err != nil {
			writeErr(w, err)
			return
		}
		upserts = append(upserts, rule)
	}
	commit, err := s.repo.Commit(req.Author, req.Message, upserts, req.Deletes)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"hash": commit.Hash})
}

func (s *Server) handleListRules(w http.ResponseWriter, r *http.Request) {
	if s.repo == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, s.repo.Active())
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	ruleID := r.PathValue("id")
	var req api.SelectModelRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	filter, err := FilterFromSearch(req.Filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	in, err := s.engine.SelectModel(ruleID, filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTO(in))
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	alerts := s.engine.Alerts()
	out := make([]api.Alert, len(alerts))
	for i, a := range alerts {
		out[i] = api.Alert{
			Time:       a.Time,
			RuleUUID:   a.RuleUUID,
			InstanceID: uuidStr(a.InstanceID),
			Action:     a.Action,
			Message:    a.Message,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// FilterFromSearch translates the wire constraint list (paper Listing 5
// shape) into a core.InstanceFilter.
func FilterFromSearch(req api.SearchRequest) (core.InstanceFilter, error) {
	f := core.InstanceFilter{IncludeDeprecated: req.IncludeDeprecated, Limit: req.Limit}
	for _, c := range req.Constraints {
		op, err := relstore.ParseOp(c.Operator)
		if err != nil {
			return f, fmt.Errorf("%w: %v", core.ErrBadSpec, err)
		}
		switch c.Field {
		case "projectName", "project":
			f.Project = c.Value
		case "modelName", "name":
			f.Name = c.Value
		case "city":
			f.City = c.Value
		case "baseVersionId", "base_version_id":
			f.BaseVersionID = c.Value
		case "framework":
			f.Framework = c.Value
		case "modelId", "model_id":
			id, err := uuid.Parse(c.Value)
			if err != nil {
				return f, fmt.Errorf("%w: bad model_id %q", core.ErrBadSpec, c.Value)
			}
			f.ModelID = id
		case "metricName":
			f.MetricName = c.Value
		case "metricScope":
			f.MetricScope = core.Scope(c.Value)
		case "metricValue":
			f.MetricOp = op
			f.MetricValue = c.Number
		default:
			return f, fmt.Errorf("%w: unknown search field %q", core.ErrBadSpec, c.Field)
		}
		// Metadata fields only support equality on the wire; metricValue
		// carries the comparison operator.
		if c.Field != "metricValue" && op != relstore.OpEq {
			return f, fmt.Errorf("%w: field %s only supports operator equal", core.ErrBadSpec, c.Field)
		}
	}
	if f.MetricName != "" && f.MetricOp == 0 {
		return f, fmt.Errorf("%w: metricName constraint needs a metricValue constraint", core.ErrBadSpec)
	}
	return f, nil
}

// --- DTO conversions ---

func modelDTO(m *core.Model) api.Model {
	return api.Model{
		ID:            m.ID.String(),
		BaseVersionID: m.BaseVersionID,
		Project:       m.Project,
		Name:          m.Name,
		Owner:         m.Owner,
		Team:          m.Team,
		Domain:        m.Domain,
		Description:   m.Description,
		Major:         m.Major,
		PrevModel:     uuidStr(m.PrevModel),
		NextModel:     uuidStr(m.NextModel),
		Created:       m.Created,
		Deprecated:    m.Deprecated,
	}
}

func modelDTOs(ms []*core.Model) []api.Model {
	out := make([]api.Model, len(ms))
	for i, m := range ms {
		out[i] = modelDTO(m)
	}
	return out
}

func instanceDTO(in *core.Instance) api.Instance {
	return api.Instance{
		ID:            in.ID.String(),
		ModelID:       in.ModelID.String(),
		BaseVersionID: in.BaseVersionID,
		Project:       in.Project,
		Name:          in.Name,
		City:          in.City,
		Framework:     in.Framework,
		TrainingData:  in.TrainingData,
		CodePointer:   in.CodePointer,
		Seed:          in.Seed,
		Epochs:        in.Epochs,
		Hyperparams:   in.Hyperparams,
		Features:      in.Features,
		BlobLocation:  in.BlobLocation,
		Created:       in.Created,
		Deprecated:    in.Deprecated,
	}
}

func instanceDTOs(ins []*core.Instance) []api.Instance {
	out := make([]api.Instance, len(ins))
	for i, in := range ins {
		out[i] = instanceDTO(in)
	}
	return out
}

func metricDTO(m *core.Metric) api.Metric {
	return api.Metric{
		ID:         m.ID.String(),
		InstanceID: m.InstanceID.String(),
		ModelID:    m.ModelID.String(),
		Name:       m.Name,
		Scope:      string(m.Scope),
		Value:      m.Value,
		At:         m.At,
	}
}

func versionDTO(v *core.VersionRecord) api.VersionRecord {
	return api.VersionRecord{
		ID:          v.ID.String(),
		ModelID:     v.ModelID.String(),
		Major:       v.Major,
		Minor:       v.Minor,
		Version:     v.String(),
		Cause:       string(v.Cause),
		InstanceID:  uuidStr(v.InstanceID),
		TriggeredBy: uuidStr(v.TriggeredBy),
		Created:     v.Created,
		Production:  v.Production,
	}
}

func uuidStr(u uuid.UUID) string {
	if u.IsNil() {
		return ""
	}
	return u.String()
}
