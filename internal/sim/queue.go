// Package sim implements the Marketplace Simulation platform of the
// paper's Case 2 (§4.3): an agent-based discrete-event simulator hosting a
// simulated world of riders and driver-partners, with demand forecasting
// models in the loop for surge pricing.
//
// The simulator runs in two modes that reproduce the paper's before/after
// comparison: ModeInSimTraining trains every model variant inside the
// simulation run (the pre-Gallery state, where "ML developers implemented
// models directly in the simulator and trained them on the fly"), and
// ModeGalleryServed fetches pre-trained instances from a Gallery registry
// (the post-Gallery state that decouples training from serving). Resource
// accounting makes the paper's claimed savings — memory and CPU time per
// simulation — measurable.
package sim

import "container/heap"

// eventKind discriminates simulator events.
type eventKind uint8

const (
	evRiderRequest eventKind = iota + 1
	evTripEnd
	evMatch
	evModelRefresh
	evReposition
)

// event is one scheduled occurrence. Payload fields are used per kind.
type event struct {
	at   float64 // simulation seconds
	kind eventKind
	seq  uint64 // tie-break for determinism

	rider  rider
	driver int
}

// eventQueue is a time-ordered min-heap of events.
type eventQueue struct {
	items []event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// push schedules an event, stamping the deterministic tie-break sequence.
func (q *eventQueue) push(e event) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

// pop removes the earliest event; callers check Len first.
func (q *eventQueue) pop() event {
	return heap.Pop(q).(event)
}
