package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMiss(t *testing.T) {
	c := New(100)
	if _, ok := c.Get("nope"); ok {
		t.Fatal("hit on empty cache")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d", st.Misses)
	}
}

func TestPutGetHit(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("value"))
	got, ok := c.Get("k")
	if !ok || string(got) != "value" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if st := c.Stats(); st.Hits != 1 || st.Bytes != 5 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("abc"))
	got, _ := c.Get("k")
	got[0] = 'X'
	again, _ := c.Get("k")
	if string(again) != "abc" {
		t.Fatal("mutating a returned value corrupted the cache")
	}
}

func TestPutCopiesInput(t *testing.T) {
	c := New(100)
	data := []byte("abc")
	c.Put("k", data)
	data[0] = 'X'
	got, _ := c.Get("k")
	if string(got) != "abc" {
		t.Fatal("mutating the input after Put corrupted the cache")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30)
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	// Touch a so b is the LRU.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", make([]byte, 10))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 30 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := New(10)
	c.Put("small", make([]byte, 5))
	c.Put("huge", make([]byte, 100))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversize value was cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversize put flushed existing entries")
	}
}

func TestUpdateExistingKeyAdjustsBytes(t *testing.T) {
	c := New(100)
	c.Put("k", make([]byte, 10))
	c.Put("k", make([]byte, 50))
	if st := c.Stats(); st.Bytes != 50 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.Put("k", make([]byte, 5))
	if st := c.Stats(); st.Bytes != 5 {
		t.Fatalf("shrink: stats = %+v", st)
	}
}

func TestUpdateTriggersEviction(t *testing.T) {
	c := New(20)
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("b", make([]byte, 20)) // grows b to the full bound; a must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived over-budget update")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing after growth")
	}
}

func TestRemove(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("x"))
	c.Remove("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("removed key still present")
	}
	c.Remove("absent") // must not panic
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	c := New(0)
	c.Put("k", []byte("x"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%64)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("got %q for key %q", v, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: resident bytes never exceed the bound, whatever the put pattern.
func TestQuickByteBoundInvariant(t *testing.T) {
	const bound = 256
	f := func(ops []struct {
		Key  uint8
		Size uint16
	}) bool {
		c := New(bound)
		for _, op := range ops {
			c.Put(fmt.Sprintf("k%d", op.Key%16), make([]byte, int(op.Size)%300))
			if c.Stats().Bytes > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cached value always round-trips bit-exactly.
func TestQuickValueFidelity(t *testing.T) {
	c := New(1 << 20)
	i := 0
	f := func(data []byte) bool {
		i++
		key := fmt.Sprintf("q%d", i)
		c.Put(key, data)
		got, ok := c.Get(key)
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
