package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// SloburnResult is E23: the per-tenant SLO engine end to end. One serving
// gateway carries two tenants; the blob store then fails every fetch so
// the victim tenant's traffic lands on a model the gateway can no longer
// load (persistent 502s), while the quiet tenant keeps hitting a resident
// model. The claims under test:
//
//  1. Detection — the victim namespace's availability objective trips its
//     fast burn pair in a deterministic number of ticks; the model-scoped
//     objective on the failing model trips immediately and its burn event
//     fires a standing rule through the engine.
//  2. Isolation — the quiet tenant's error budget is untouched: dimensional
//     RED metrics keep the blast radius attributable to one namespace.
//  3. Recovery — once the fault clears, the breach clears after the slow
//     window drains, and a recovered event is emitted.
//  4. Cost — recording the per-tenant/per-model RED vectors plus auth adds
//     zero heap allocations per predict request.
type SloburnResult struct {
	HealthyTicks   int
	DetectTicks    int // outage ticks until the namespace objective breached
	RecoveryTicks  int // healthy ticks until the breach cleared
	BreachSeverity string

	RuleFired     int     // "page" action invocations via slo.burn
	QuietBudget   float64 // quiet tenant budget after the outage (want 1.0)
	QuietBreached bool

	AllocOps            int
	OffAllocs, OnAllocs float64
	OffP50, OnP50       time.Duration
}

// REDExtraAllocs is the hot-path claim: allocations per predict request
// added by auth + dimensional RED recording over the bare handler.
func (r *SloburnResult) REDExtraAllocs() float64 { return r.OnAllocs - r.OffAllocs }

// Format renders E23 as paper-style rows.
func (r *SloburnResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slo burn-rate alerting (tick=1s, fast 5s/60s@14.4, slow 30s/360s@6):\n")
	fmt.Fprintf(&b, "  healthy baseline: %d ticks, no breach\n", r.HealthyTicks)
	fmt.Fprintf(&b, "  outage: victim namespace breached after %d ticks (severity=%s); page rule fired %d time(s)\n",
		r.DetectTicks, r.BreachSeverity, r.RuleFired)
	fmt.Fprintf(&b, "  isolation: quiet tenant budget %.3f, breached=%v\n", r.QuietBudget, r.QuietBreached)
	fmt.Fprintf(&b, "  recovery: breach cleared %d ticks after fault removal\n", r.RecoveryTicks)
	fmt.Fprintf(&b, "  predict hot path (%d ops): plain p50=%v allocs/op=%.1f; auth+RED p50=%v allocs/op=%.1f (extra %+.1f)\n",
		r.AllocOps, r.OffP50.Round(time.Microsecond), r.OffAllocs,
		r.OnP50.Round(time.Microsecond), r.OnAllocs, r.REDExtraAllocs())
	return b.String()
}

// BenchMetrics emits BENCH_sloburn.json. Burn detection is pure counter
// arithmetic over seeded traffic, so the tick counts and isolation
// outcomes gate exactly; the alloc delta gates on benchfmt's
// zero-baseline path like E22.
func (r *SloburnResult) BenchMetrics() []benchfmt.Metric {
	fired := 0.0
	if r.RuleFired > 0 {
		fired = 1
	}
	breached := 0.0
	if r.QuietBreached {
		breached = 1
	}
	extra := math.Round(r.REDExtraAllocs())
	if extra == 0 {
		extra = 0 // normalize -0 so the baseline JSON reads 0
	}
	return []benchfmt.Metric{
		{Name: "burn_detection_ticks", Unit: "ticks", Value: float64(r.DetectTicks), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "burn_recovery_ticks", Unit: "ticks", Value: float64(r.RecoveryTicks), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "burn_rule_fired", Value: fired, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "quiet_budget_remaining", Value: r.QuietBudget, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "quiet_breached", Value: breached, Better: benchfmt.LowerIsBetter, Tol: 0.01},
		// Rounded so the healthy value snaps to benchfmt's zero-baseline
		// path: any run measuring ≥1 alloc/op of auth+RED cost fails.
		{Name: "predict_red_extra_allocs_per_op", Unit: "allocs/op", Value: extra, Better: benchfmt.LowerIsBetter, Tol: 0.5},
		{Name: "predict_red_on_allocs_per_op", Unit: "allocs/op", Value: r.OnAllocs, Better: benchfmt.Info},
		{Name: "predict_red_overhead_seconds", Unit: "s", Value: (r.OnP50 - r.OffP50).Seconds(), Better: benchfmt.Info},
	}
}

var errBlobFault = errors.New("sloburn: injected blob fault")

// Sloburn runs E23 with n measured ops per predict-cost arm.
func Sloburn(n int) (*SloburnResult, error) {
	// A custom env: same deterministic stack as NewEnv, but the blob store
	// carries a fault hook so the outage can be switched on mid-run.
	clk := clock.NewMock(epoch)
	var faults atomic.Bool
	blobs := blobstore.NewMemory(blobstore.Options{Hook: func(op blobstore.OpKind, replica int, key string) error {
		if faults.Load() && op == blobstore.OpGet {
			return errBlobFault
		}
		return nil
	}})
	reg, err := core.New(relstore.NewMemory(), blobs, core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(61),
	})
	if err != nil {
		return nil, err
	}
	repo := rules.NewRepo(clk)
	engine := rules.NewEngine(reg, repo, clk)

	// Three served models: the victim tenant's healthy model, the model it
	// fails over to mid-outage (never resident, so every predict needs a
	// blob fetch), and the quiet tenant's model.
	promote := func(name string) (string, error) {
		m, err := reg.RegisterModel(core.ModelSpec{
			BaseVersionID: "sloburn_" + name, Project: "sloburn", Name: name,
		})
		if err != nil {
			return "", err
		}
		blob, err := forecast.Encode(&forecast.Heuristic{K: 2})
		if err != nil {
			return "", err
		}
		in, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: name, City: "sf"}, blob)
		if err != nil {
			return "", err
		}
		if err := reg.PromoteInstance(in.ID); err != nil {
			return "", err
		}
		return m.ID.String(), nil
	}
	warmID, err := promote("victim-warm")
	if err != nil {
		return nil, err
	}
	coldID, err := promote("victim-cold")
	if err != nil {
		return nil, err
	}
	quietID, err := promote("quiet-steady")
	if err != nil {
		return nil, err
	}

	// The control plane: one namespace per tenant plus a bench namespace
	// so the measurement arms never touch the victim's counters.
	tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(62), Obs: obs.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	tokens := map[string]string{}
	for _, ns := range []string{"victim", "quiet", "bench"} {
		if err := tm.CreateNamespace(ctx, tenant.Namespace{Name: ns}); err != nil {
			return nil, err
		}
		secret, _, err := tm.MintToken(ctx, ns, ns+"-reader", tenant.RoleReader)
		if err != nil {
			return nil, err
		}
		tokens[ns] = secret
	}

	gwObs := obs.NewRegistry()
	gw := serve.New(regSource{reg}, serve.Options{RefreshInterval: -1, Obs: gwObs})
	defer gw.Close()
	hOn := serve.NewHandler(gw, serve.WithAuthorizer(tm))
	hOff := serve.NewHandler(gw)

	payload, err := json.Marshal(api.PredictRequest{History: []float64{10, 12}})
	if err != nil {
		return nil, err
	}
	predict := func(h *serve.Handler, modelID, token string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/"+modelID, bytes.NewReader(payload))
		req.Header.Set("Authorization", "Bearer "+token)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	res := &SloburnResult{AllocOps: n}

	// --- cost arm (before any SLO traffic; bench namespace only) ---
	// Both arms send byte-identical requests, so the delta is exactly what
	// the auth middleware plus dimensional RED recording add.
	allocOp := func(h *serve.Handler) func() error {
		return func() error {
			if code := predict(h, warmID, tokens["bench"]); code != http.StatusOK {
				return fmt.Errorf("sloburn: predict status %d", code)
			}
			return nil
		}
	}
	if res.OffP50, res.OffAllocs, err = measureHTTP(n, allocOp(hOff)); err != nil {
		return nil, err
	}
	if res.OnP50, res.OnAllocs, err = measureHTTP(n, allocOp(hOn)); err != nil {
		return nil, err
	}

	// --- the standing rule: any model-scoped burn pages the on-call ---
	if _, err := repo.Commit("oncall", "page on slo burn", []*rules.Rule{{
		UUID:        "7a0e16d0-0000-4000-8000-000000000e23",
		Team:        "sloburn",
		Name:        "page-on-burn",
		Kind:        rules.KindAction,
		When:        `slo.event == "burn"`,
		Environment: "production",
		Actions:     []rules.ActionRef{{Action: "page"}},
	}}, nil); err != nil {
		return nil, err
	}
	engine.RegisterAction("page", func(*rules.ActionContext) error {
		res.RuleFired++
		return nil
	})

	// --- the SLO evaluator, reading the gateway's RED vectors ---
	red := httpmw.NewRED(gwObs)
	pred := serve.NewPredictRED(gwObs)
	cfg := slo.Config{
		Tick:      time.Second,
		FastShort: 5 * time.Second, FastLong: 60 * time.Second, FastBurn: 14.4,
		SlowShort: 30 * time.Second, SlowLong: 360 * time.Second, SlowBurn: 6,
		MinSamples: 10,
		Clock:      clk,
		UUIDs:      uuid.NewSeeded(63),
		Obs:        gwObs,
		Events:     engine,
		Instances: func(modelID string) (uuid.UUID, bool) {
			id, err := uuid.Parse(modelID)
			if err != nil {
				return uuid.UUID{}, false
			}
			v, err := reg.ProductionVersion(id)
			if err != nil || v.InstanceID.IsNil() {
				return uuid.UUID{}, false
			}
			return v.InstanceID, true
		},
	}
	svc, err := slo.Open(relstore.NewMemory(), slo.VecSource{
		Requests: red.Requests, Errors: red.Errors, Latency: red.Latency,
		ModelRequests: pred.Requests, ModelErrors: pred.Errors, ModelLatency: pred.Latency,
	}, cfg)
	if err != nil {
		return nil, err
	}
	victimSLO, err := svc.Create(ctx, slo.Objective{Namespace: "victim", Kind: slo.KindAvailability, Target: 0.99})
	if err != nil {
		return nil, err
	}
	quietSLO, err := svc.Create(ctx, slo.Objective{Namespace: "quiet", Kind: slo.KindAvailability, Target: 0.99})
	if err != nil {
		return nil, err
	}
	if _, err := svc.Create(ctx, slo.Objective{
		Namespace: "victim", ModelID: coldID, Kind: slo.KindAvailability, Target: 0.99,
	}); err != nil {
		return nil, err
	}
	statusOf := func(id string) (slo.Status, error) {
		for _, st := range svc.Statuses() {
			if st.Objective.ID == id {
				return st, nil
			}
		}
		return slo.Status{}, fmt.Errorf("sloburn: objective %s missing from statuses", id)
	}

	// tick drives one evaluation interval: reqs predicts per tenant, then
	// an evaluator pass, then the clock advances.
	const reqs = 20
	tick := func(victimModel string, wantVictim int) error {
		for i := 0; i < reqs; i++ {
			if code := predict(hOn, victimModel, tokens["victim"]); code != wantVictim {
				return fmt.Errorf("sloburn: victim predict status %d, want %d", code, wantVictim)
			}
			if code := predict(hOn, quietID, tokens["quiet"]); code != http.StatusOK {
				return fmt.Errorf("sloburn: quiet predict status %d, want 200", code)
			}
		}
		svc.Evaluate(ctx)
		engine.Flush()
		clk.Advance(cfg.Tick)
		return nil
	}

	// --- phase A: healthy baseline ---
	// Long enough to fill the slow-long window: with full history the
	// sharp outage trips the fast pair (as designed) rather than a
	// history-clamped slow window.
	res.HealthyTicks = 400
	for t := 0; t < res.HealthyTicks; t++ {
		if err := tick(warmID, http.StatusOK); err != nil {
			return nil, err
		}
	}
	if st, err := statusOf(victimSLO.ID); err != nil {
		return nil, err
	} else if st.Breached || st.NoData {
		return nil, fmt.Errorf("sloburn: victim objective unhealthy before the outage: %+v", st)
	}

	// --- phase B: outage ---
	// The blob store fails every fetch and the victim's traffic moves to
	// the never-resident model: each predict forces a load that fails, the
	// gateway drops the slot, and the tenant sees persistent 502s.
	faults.Store(true)
	for t := 1; t <= 30; t++ {
		if err := tick(coldID, http.StatusBadGateway); err != nil {
			return nil, err
		}
		st, err := statusOf(victimSLO.ID)
		if err != nil {
			return nil, err
		}
		if st.Breached {
			res.DetectTicks = t
			res.BreachSeverity = st.Severity
			break
		}
	}
	if res.DetectTicks == 0 {
		return nil, fmt.Errorf("sloburn: victim objective never breached during the outage")
	}
	if res.RuleFired == 0 {
		return nil, fmt.Errorf("sloburn: model burn never fired the page rule")
	}
	qst, err := statusOf(quietSLO.ID)
	if err != nil {
		return nil, err
	}
	res.QuietBudget = qst.BudgetRemaining
	res.QuietBreached = qst.Breached

	// --- phase C: recovery ---
	faults.Store(false)
	for t := 1; t <= 120; t++ {
		if err := tick(warmID, http.StatusOK); err != nil {
			return nil, err
		}
		st, err := statusOf(victimSLO.ID)
		if err != nil {
			return nil, err
		}
		if !st.Breached {
			res.RecoveryTicks = t
			break
		}
	}
	if res.RecoveryTicks == 0 {
		return nil, fmt.Errorf("sloburn: victim objective never recovered after the fault cleared")
	}

	// The gateway's registry — RED vectors, slo_* gauges and all — must
	// still render a byte-valid Prometheus exposition.
	var buf bytes.Buffer
	if err := gwObs.WriteProm(&buf); err != nil {
		return nil, err
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		return nil, fmt.Errorf("sloburn: gateway exposition invalid after run: %w", err)
	}
	return res, nil
}
