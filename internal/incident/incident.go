// Package incident is the flight recorder: when something pages — an SLO
// burn, a model-health degradation, a standing rule, or an operator's
// manual trigger — it freezes the process's full observability state into
// a durable incident bundle before the bounded in-memory rings rotate the
// evidence away. A bundle holds both daemons' metric snapshots (JSON and
// Prometheus text), trace- and log-ring tails, the audit tail for the
// implicated entity, health and SLO verdicts, goroutine and heap
// profiles, and build info. The bundle blob rides the existing
// blobstore/DAL write ordering (blob first, pinned, then the index row),
// and the `incidents` index row replays out of the metadata WAL, so a
// capture survives a daemon restart.
//
// Captures are debounced per scope — a token-bucket of one capture per
// scope per Debounce interval — so a burn storm cannot flood the blob
// store, and are cross-process: the registry daemon pulls the implicated
// gateway's snapshot over GET /v1/debug/bundle with a bounded timeout,
// marking the bundle partial if the gateway is the thing that's down.
package incident

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/clock"
	"gallery/internal/dal"
	"gallery/internal/obs"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/slo"
	"gallery/internal/uuid"
)

// Table is the relstore table indexing persisted bundles.
const Table = "incidents"

// Defaults; Config fields of 0 take these.
const (
	DefaultKeep           = 32
	DefaultDebounce       = 5 * time.Minute
	DefaultGatewayTimeout = 2 * time.Second
	DefaultLogTail        = 256
	DefaultTraceTail      = 64
	DefaultAuditTail      = 64
	DefaultProfileTail    = 16
)

// maxProfileBytes bounds each embedded pprof text profile so one huge
// goroutine dump cannot bloat a bundle past reason.
const maxProfileBytes = 512 << 10

// maxGatewayBody bounds the cross-process snapshot read.
const maxGatewayBody = 8 << 20

// ErrNotFound reports an unknown incident id.
var ErrNotFound = errors.New("incident: not found")

// ErrSuppressed reports a trigger swallowed by the per-scope debounce —
// the caller's scope was captured too recently.
var ErrSuppressed = errors.New("incident: capture suppressed")

// Trigger describes why a capture is being asked for. Scope (the
// debounce key and blast-radius label) is the most specific implicated
// entity: the model when one is named, else the namespace, else the
// whole process.
type Trigger struct {
	Kind      string // manual | slo.burn | health.degraded | rule
	Namespace string
	ModelID   string
	Reason    string
	TraceID   string
}

// Scope is the debounce key the trigger lands on.
func (t Trigger) Scope() string {
	switch {
	case t.ModelID != "":
		return t.ModelID
	case t.Namespace != "":
		return t.Namespace
	}
	return "process"
}

// HealthLister supplies the bundle's model-health section;
// *health.Monitor satisfies it.
type HealthLister interface {
	List() []api.ModelHealth
}

// SLOStatuser supplies the bundle's SLO section; *slo.Service satisfies
// it.
type SLOStatuser interface {
	Statuses() []slo.Status
}

// ProfileHistory supplies the bundle's continuous-profiling tail:
// recent window summaries across kinds, newest first. *profile.Ring
// satisfies it.
type ProfileHistory interface {
	History(limit int) []profile.Summary
}

// Config wires a Recorder into one process.
type Config struct {
	// Obs is the registry snapshotted into bundles; also home of the
	// incident_* counters. nil uses obs.Default.
	Obs *obs.Registry
	// Tracer's completed-trace ring becomes the bundle's trace tail; may
	// be nil.
	Tracer *trace.Tracer
	// Logs is the structured-log ring tailed into bundles; may be nil.
	Logs *obslog.Ring
	// Audit supplies the implicated entity's audit tail; may be nil.
	Audit *audit.Log
	// Health and SLO supply verdict sections; either may be nil (or bound
	// later via BindHealth/BindSLO, breaking the construction cycle with
	// components that want the recorder as their event sink).
	Health HealthLister
	SLO    SLOStatuser
	// Profiles is the continuous profiler's window ring, tailed into the
	// local process snapshot as pre-trigger evidence; may be nil.
	Profiles ProfileHistory

	// Service names the local process in its snapshot (default
	// "galleryd").
	Service string
	// Gateway is the serving gateway's base URL for the cross-process
	// half of a bundle; empty skips the pull.
	Gateway string
	// GatewayToken authenticates the pull when the gateway runs -auth.
	GatewayToken string
	// GatewayTimeout bounds the pull (default 2s); past it the bundle is
	// marked partial rather than blocked.
	GatewayTimeout time.Duration
	// HTTP overrides the pull transport; nil uses http.DefaultClient.
	HTTP *http.Client

	// Keep bounds persisted bundles; the oldest are pruned (index row and
	// blob) as new captures land. 0 uses DefaultKeep; negative disables.
	Keep int
	// Debounce is the per-scope minimum interval between captures
	// (token bucket of one). 0 uses DefaultDebounce; negative disables.
	Debounce time.Duration
	// LogTail / TraceTail / AuditTail / ProfileTail bound each bundle
	// section.
	LogTail     int
	TraceTail   int
	AuditTail   int
	ProfileTail int

	Clock clock.Clock
	UUIDs *uuid.Generator
}

// Recorder captures incident bundles. All methods are safe for
// concurrent use; captures themselves are serialized. The recorder sits
// entirely off the request hot paths — triggers arrive from evaluator
// transitions, rule actions, and the manual endpoint — so an idle
// recorder costs the predict path nothing.
type Recorder struct {
	d    *dal.DAL
	cfg  Config
	http *http.Client

	cCaptures   *obs.Counter // incident_captures_total
	cSuppressed *obs.Counter // incident_suppressed_total
	cErrors     *obs.Counter // incident_errors_total
	cPruned     *obs.Counter // incident_pruned_total

	mu     sync.Mutex // guards lastAt and serializes captures
	lastAt map[string]time.Time
}

// Open readies the incidents table over the store behind d and returns a
// Recorder. Existing index rows replay out of the WAL with the rest of
// the metadata, so List/Get see pre-restart captures immediately.
func Open(d *dal.DAL, cfg Config) (*Recorder, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.Default
	}
	if cfg.Service == "" {
		cfg.Service = "galleryd"
	}
	if cfg.GatewayTimeout <= 0 {
		cfg.GatewayTimeout = DefaultGatewayTimeout
	}
	if cfg.Keep == 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.Debounce == 0 {
		cfg.Debounce = DefaultDebounce
	}
	if cfg.LogTail <= 0 {
		cfg.LogTail = DefaultLogTail
	}
	if cfg.TraceTail <= 0 {
		cfg.TraceTail = DefaultTraceTail
	}
	if cfg.AuditTail <= 0 {
		cfg.AuditTail = DefaultAuditTail
	}
	if cfg.ProfileTail <= 0 {
		cfg.ProfileTail = DefaultProfileTail
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.UUIDs == nil {
		cfg.UUIDs = uuid.NewGenerator()
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if err := d.Meta().CreateTable(schema()); err != nil {
		return nil, fmt.Errorf("incident: create table: %w", err)
	}
	return &Recorder{
		d:           d,
		cfg:         cfg,
		http:        cfg.HTTP,
		cCaptures:   cfg.Obs.Counter("incident_captures_total"),
		cSuppressed: cfg.Obs.Counter("incident_suppressed_total"),
		cErrors:     cfg.Obs.Counter("incident_errors_total"),
		cPruned:     cfg.Obs.Counter("incident_pruned_total"),
		lastAt:      make(map[string]time.Time),
	}, nil
}

// BindHealth attaches the health section source after construction —
// the monitor wants the recorder as its transition sink, so one of the
// two must bind late.
func (r *Recorder) BindHealth(h HealthLister) {
	r.mu.Lock()
	r.cfg.Health = h
	r.mu.Unlock()
}

// BindSLO attaches the SLO section source after construction, for the
// same cycle reason as BindHealth.
func (r *Recorder) BindSLO(s SLOStatuser) {
	r.mu.Lock()
	r.cfg.SLO = s
	r.mu.Unlock()
}

// Trigger asks for a capture. The per-scope debounce is checked first —
// a storm of burn events on one scope yields exactly one bundle per
// Debounce interval, the rest returning ErrSuppressed. A failed capture
// keeps its token spent: a persistently failing trigger must not turn
// the debounce into a retry hammer against the blob store.
func (r *Recorder) Trigger(ctx context.Context, t Trigger) (api.Incident, error) {
	now := r.cfg.Clock.Now()
	scope := t.Scope()

	r.mu.Lock()
	if r.cfg.Debounce > 0 {
		if last, ok := r.lastAt[scope]; ok && now.Sub(last) < r.cfg.Debounce {
			r.mu.Unlock()
			r.cSuppressed.Inc()
			return api.Incident{}, fmt.Errorf("%w: scope %q captured %s ago (debounce %s)",
				ErrSuppressed, scope, now.Sub(last), r.cfg.Debounce)
		}
	}
	r.lastAt[scope] = now
	health, sloSrc := r.cfg.Health, r.cfg.SLO
	r.mu.Unlock()

	inc, err := r.capture(ctx, t, now, health, sloSrc)
	if err != nil {
		r.cErrors.Inc()
		return api.Incident{}, err
	}
	r.cCaptures.Inc()
	return inc, nil
}

// capture assembles and persists one bundle.
func (r *Recorder) capture(ctx context.Context, t Trigger, now time.Time, health HealthLister, sloSrc SLOStatuser) (api.Incident, error) {
	inc := api.Incident{
		ID:        r.cfg.UUIDs.New().String(),
		Trigger:   t.Kind,
		Scope:     t.Scope(),
		Namespace: t.Namespace,
		ModelID:   t.ModelID,
		Reason:    t.Reason,
		TraceID:   t.TraceID,
		Created:   now,
	}
	if inc.TraceID == "" {
		inc.TraceID = trace.FromContext(ctx).TraceIDString()
	}

	b := api.IncidentBundle{
		Registry: SnapshotProcess(r.cfg.Service, r.cfg.Obs, r.cfg.Tracer, r.cfg.Logs,
			r.cfg.Profiles, r.cfg.TraceTail, r.cfg.LogTail, r.cfg.ProfileTail, now),
	}
	if r.cfg.Gateway != "" {
		gs, err := r.fetchGateway(ctx)
		if err != nil {
			inc.Partial = true
			b.GatewayError = err.Error()
		} else {
			b.Gateway = &gs
		}
	}
	if health != nil {
		b.Health = health.List()
	}
	if sloSrc != nil {
		for _, st := range sloSrc.Statuses() {
			b.SLO = append(b.SLO, sloStatusAPI(st))
		}
	}
	if r.cfg.Audit != nil {
		if evs, err := r.cfg.Audit.Events(r.auditQuery(t)); err == nil {
			b.Audit = auditAPI(evs)
		}
	}
	b.Incident = inc // Size is stamped on the index row only

	blob, err := json.Marshal(b)
	if err != nil {
		return api.Incident{}, fmt.Errorf("incident: encode bundle: %w", err)
	}
	inc.Size = int64(len(blob))

	if _, err := r.d.InsertWithBlobCtx(ctx, Table, rowOf(inc), "location", "incident-"+inc.ID, blob); err != nil {
		return api.Incident{}, fmt.Errorf("incident: persist bundle: %w", err)
	}
	r.prune(ctx)
	return inc, nil
}

// auditQuery scopes the bundle's audit tail to the implicated entity:
// the model's joined timeline when one is named, else events naming the
// namespace, else the process-wide tail.
func (r *Recorder) auditQuery(t Trigger) audit.Query {
	q := audit.Query{Limit: r.cfg.AuditTail, Desc: true}
	switch {
	case t.ModelID != "":
		q.ModelID = t.ModelID
	case t.Namespace != "":
		q.EntityID = t.Namespace
	}
	return q
}

// fetchGateway pulls the serving gateway's process snapshot with a
// bounded timeout.
func (r *Recorder) fetchGateway(ctx context.Context) (api.ProcessSnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.GatewayTimeout)
	defer cancel()
	url := strings.TrimRight(r.cfg.Gateway, "/") + "/v1/debug/bundle"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return api.ProcessSnapshot{}, fmt.Errorf("incident: gateway request: %w", err)
	}
	if r.cfg.GatewayToken != "" {
		req.Header.Set("Authorization", "Bearer "+r.cfg.GatewayToken)
	}
	resp, err := r.http.Do(req)
	if err != nil {
		return api.ProcessSnapshot{}, fmt.Errorf("incident: gateway pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.ProcessSnapshot{}, fmt.Errorf("incident: gateway pull: status %d", resp.StatusCode)
	}
	var ps api.ProcessSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxGatewayBody)).Decode(&ps); err != nil {
		return api.ProcessSnapshot{}, fmt.Errorf("incident: gateway snapshot: %w", err)
	}
	return ps, nil
}

// prune drops the oldest bundles past the retention bound — index row
// first, then the now-unreferenced blob.
func (r *Recorder) prune(ctx context.Context) {
	if r.cfg.Keep <= 0 {
		return
	}
	rows, err := r.d.Meta().SelectCtx(ctx, relstore.Query{
		Table: Table, OrderBy: "created", Desc: true, Offset: r.cfg.Keep,
	})
	if err != nil {
		return
	}
	for _, row := range rows {
		if err := r.d.Meta().DeleteCtx(ctx, Table, row["id"].Str); err != nil {
			continue
		}
		if loc := row["location"].Str; loc != "" {
			_ = r.d.DeleteBlob(loc)
		}
		r.cPruned.Inc()
	}
}

// List returns incident index rows, newest first. A non-empty namespace
// restricts the listing to that tenant's incidents.
func (r *Recorder) List(namespace string) ([]api.Incident, error) {
	q := relstore.Query{Table: Table, OrderBy: "created", Desc: true}
	if namespace != "" {
		q.Where = []relstore.Constraint{{Field: "namespace", Op: relstore.OpEq, Value: relstore.String(namespace)}}
	}
	rows, err := r.d.Meta().Select(q)
	if err != nil {
		return nil, err
	}
	out := make([]api.Incident, 0, len(rows))
	for _, row := range rows {
		inc, _ := incOf(row)
		out = append(out, inc)
	}
	return out, nil
}

// Get fetches one incident's index row and its persisted bundle.
func (r *Recorder) Get(ctx context.Context, id string) (api.Incident, api.IncidentBundle, error) {
	row, err := r.d.Meta().GetCtx(ctx, Table, id)
	if err != nil {
		if errors.Is(err, relstore.ErrNotFound) {
			return api.Incident{}, api.IncidentBundle{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return api.Incident{}, api.IncidentBundle{}, err
	}
	inc, loc := incOf(row)
	blob, err := r.d.GetBlobCtx(ctx, loc)
	if err != nil {
		return api.Incident{}, api.IncidentBundle{}, fmt.Errorf("incident: fetch bundle %s: %w", id, err)
	}
	var b api.IncidentBundle
	if err := json.Unmarshal(blob, &b); err != nil {
		return api.Incident{}, api.IncidentBundle{}, fmt.Errorf("incident: decode bundle %s: %w", id, err)
	}
	b.Incident = inc // the index row is the source of truth (it carries Size)
	return inc, b, nil
}

// SnapshotProcess freezes one process's observability state: metric
// registry (JSON and Prometheus text), trace-ring tail, log-ring tail,
// continuous-profiler window history, goroutine and heap profiles, and
// build info. It is what the serving gateway serves at
// GET /v1/debug/bundle and what the recorder embeds for its own process.
func SnapshotProcess(service string, reg *obs.Registry, tracer *trace.Tracer, logs *obslog.Ring, profiles ProfileHistory, traceTail, logTail, profileTail int, now time.Time) api.ProcessSnapshot {
	if traceTail <= 0 {
		traceTail = DefaultTraceTail
	}
	if logTail <= 0 {
		logTail = DefaultLogTail
	}
	if profileTail <= 0 {
		profileTail = DefaultProfileTail
	}
	ps := api.ProcessSnapshot{
		Service:  service,
		Captured: now,
		Build: api.BuildInfo{
			Service:   service,
			Version:   obs.BuildVersion(),
			GoVersion: runtime.Version(),
			Start:     obs.ProcessStart(),
		},
	}
	if reg != nil {
		if js, err := json.Marshal(reg.Snapshot()); err == nil {
			ps.Metrics = js
		}
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err == nil {
			ps.MetricsProm = buf.String()
		}
	}
	if tracer != nil {
		st := tracer.Store()
		if js, err := json.Marshal(map[string]any{
			"stats":  st.Stats(),
			"traces": st.Summaries(traceTail),
		}); err == nil {
			ps.Traces = js
		}
	}
	if logs != nil {
		ps.Logs, _ = logs.Entries(obslog.Filter{Limit: logTail})
	}
	if profiles != nil {
		ps.Profiles = profiles.History(profileTail)
	}
	ps.GoroutineProfile = profileText("goroutine")
	ps.HeapProfile = profileText("heap")
	return ps
}

// profileText renders a pprof profile in its debug=1 text form, bounded.
func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	if buf.Len() > maxProfileBytes {
		buf.Truncate(maxProfileBytes)
	}
	return buf.String()
}

// --- persistence mapping ---

func schema() relstore.Schema {
	return relstore.Schema{
		Table: Table,
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "trigger", Kind: relstore.KindString},
			{Name: "scope", Kind: relstore.KindString},
			{Name: "namespace", Kind: relstore.KindString, Nullable: true},
			{Name: "model_id", Kind: relstore.KindString, Nullable: true},
			{Name: "reason", Kind: relstore.KindString, Nullable: true},
			{Name: "trace_id", Kind: relstore.KindString, Nullable: true},
			{Name: "created", Kind: relstore.KindTime},
			{Name: "size", Kind: relstore.KindInt},
			{Name: "partial", Kind: relstore.KindInt},
			{Name: "location", Kind: relstore.KindString},
		},
		Key:     "id",
		Indexes: []string{"namespace", "scope", "created"},
	}
}

func rowOf(inc api.Incident) relstore.Row {
	partial := int64(0)
	if inc.Partial {
		partial = 1
	}
	return relstore.Row{
		"id":        relstore.String(inc.ID),
		"trigger":   relstore.String(inc.Trigger),
		"scope":     relstore.String(inc.Scope),
		"namespace": relstore.String(inc.Namespace),
		"model_id":  relstore.String(inc.ModelID),
		"reason":    relstore.String(inc.Reason),
		"trace_id":  relstore.String(inc.TraceID),
		"created":   relstore.Time(inc.Created),
		"size":      relstore.Int(inc.Size),
		"partial":   relstore.Int(partial),
	}
}

func incOf(row relstore.Row) (api.Incident, string) {
	return api.Incident{
		ID:        row["id"].Str,
		Trigger:   row["trigger"].Str,
		Scope:     row["scope"].Str,
		Namespace: row["namespace"].Str,
		ModelID:   row["model_id"].Str,
		Reason:    row["reason"].Str,
		TraceID:   row["trace_id"].Str,
		Created:   row["created"].Time,
		Size:      row["size"].Int,
		Partial:   row["partial"].Int != 0,
	}, row["location"].Str
}

func sloStatusAPI(st slo.Status) api.SLOStatus {
	return api.SLOStatus{
		SLO: api.SLO{
			ID:                 st.Objective.ID,
			Namespace:          st.Objective.Namespace,
			ModelID:            st.Objective.ModelID,
			Kind:               string(st.Objective.Kind),
			Target:             st.Objective.Target,
			LatencyThresholdMS: st.Objective.LatencyThreshold * 1000,
			Created:            st.Objective.Created,
		},
		Breached:        st.Breached,
		Severity:        st.Severity,
		BurnFast:        st.BurnFast,
		BurnSlow:        st.BurnSlow,
		BudgetRemaining: st.BudgetRemaining,
		NoData:          st.NoData,
		LastChange:      st.LastChange,
	}
}

func auditAPI(evs []audit.Event) []api.AuditEvent {
	out := make([]api.AuditEvent, len(evs))
	for i, ev := range evs {
		out[i] = api.AuditEvent{
			ID:         ev.ID,
			Seq:        ev.Seq,
			Time:       ev.Time,
			Actor:      ev.Actor,
			Action:     ev.Action,
			EntityType: ev.EntityType,
			EntityID:   ev.EntityID,
			ModelID:    ev.ModelID,
			Before:     ev.Before,
			After:      ev.After,
			Detail:     ev.Detail,
			TraceID:    ev.TraceID,
		}
	}
	return out
}
