// Package server exposes the Gallery registry and rule engine as a
// stateless JSON/HTTP microservice — the reproduction's stand-in for the
// paper's Thrift service (§4, §4.1). All state lives in the storage layer,
// so any number of server processes can front the same stores, matching
// the paper's "stateless microservice ... horizontally scalable" design.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"

	"gallery/internal/api"
	"gallery/internal/audit"
	"gallery/internal/core"
	"gallery/internal/health"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// DefaultMaxBodyBytes bounds JSON request bodies; large model blobs ride
// inside upload requests, so the ceiling is generous.
const DefaultMaxBodyBytes = 256 << 20

// Options tunes a Server.
type Options struct {
	// Obs receives HTTP and dispatch metrics; nil uses obs.Default.
	Obs *obs.Registry
	// AccessLog, when non-nil, receives one structured (JSON) log line
	// per request.
	AccessLog io.Writer
	// MaxBodyBytes bounds JSON request bodies (default DefaultMaxBodyBytes).
	// Oversized bodies are rejected with 413.
	MaxBodyBytes int64
	// EventQueue bounds the rule-engine dispatch queue (default 1024).
	// Metric events beyond the bound are dropped and counted.
	EventQueue int
	// Tracer records request traces. nil builds a local tracer with the
	// Never sampler — the debug endpoints still serve (and ingest spans
	// shipped by tracing peers), but no local request starts a trace.
	Tracer *trace.Tracer
	// Pprof mounts net/http/pprof under /v1/debug/pprof/ (off by default:
	// profiling endpoints expose stacks and should be opted into).
	Pprof bool
	// Health, when non-nil, mounts the continuous model-health endpoints
	// (POST /v1/health/observations, GET /v1/health/models[/{id}]).
	Health *health.Monitor
	// Logs, when non-nil, is the bounded in-memory ring served at
	// GET /v1/debug/logs. Access-log lines and the server's ad-hoc error
	// logs are routed through it (trace-correlated), teeing to AccessLog
	// when that is also set.
	Logs *obslog.Ring
	// LogLevel gates what enters Logs (default info).
	LogLevel slog.Level
	// Tenants, when non-nil, turns on the multi-tenant control plane:
	// every request must carry a bearer token, roles and per-namespace
	// rate limits are enforced before handlers run, model/blob quotas are
	// charged on registration and upload, the /v1/tenants admin endpoints
	// are mounted, and the audit actor becomes the verified token identity
	// (X-Gallery-Actor is ignored).
	Tenants *tenant.Manager
	// SLO, when non-nil, mounts the objective endpoints (POST/GET
	// /v1/slo, DELETE /v1/slo/{id}, GET /v1/slo/status). The service's
	// evaluation loop is the daemon's to start; the server only fronts
	// declaration and status.
	SLO *slo.Service
	// Incidents, when non-nil, mounts the flight-recorder endpoints
	// (POST/GET /v1/incidents, GET /v1/incidents/{id}).
	Incidents *incident.Recorder
	// Profiles, when non-nil, mounts the continuous-profiling fleet view
	// (GET /v1/debug/profile) and the cross-process summary ingest
	// (POST /v1/debug/profile) that gateways ship into.
	Profiles *profile.Fleet
}

// Server wires HTTP routes to the registry and rule engine.
type Server struct {
	reg       *core.Registry
	repo      *rules.Repo
	engine    *rules.Engine
	health    *health.Monitor
	tenants   *tenant.Manager    // nil when auth is off
	slo       *slo.Service       // nil when SLOs are off
	incidents *incident.Recorder // nil when the flight recorder is off
	profiles  *profile.Fleet     // nil when continuous profiling is off
	mux       *http.ServeMux
	h         http.Handler // mux behind the shared observability middleware

	// routePatterns records every registered mux pattern, so tests can
	// assert each route against the tenant role classification and a new
	// route cannot silently land in the wrong class.
	routePatterns []string

	obs        *obs.Registry
	accessLog  *slog.Logger
	logs       *obslog.Ring
	tracer     *trace.Tracer
	maxBody    int64
	allLatency *obs.Histogram // route-less latency; headline p50/p95 for /v1/stats

	cDispatched    *obs.Counter
	cDropped       *obs.Counter
	cBlobWriteErrs *obs.Counter

	// Rule-engine dispatch queue: metric-update events leave the request
	// path here and are replayed into the engine by a single goroutine,
	// keeping the engine's own serialization.
	events    chan metricEvent
	eventWG   sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// metricEvent pairs a metric update with the detached trace context of the
// request that caused it, so asynchronous rule evaluation shows up as late
// spans of the same trace.
type metricEvent struct {
	ctx context.Context
	id  uuid.UUID
}

// New builds a Server with default Options. The engine may be nil for
// storage-only deployments (feature tiers 1–3 of paper §6.3); rule
// endpoints then return 404.
func New(reg *core.Registry, repo *rules.Repo, engine *rules.Engine) *Server {
	return NewWith(reg, repo, engine, Options{})
}

// NewWith builds a Server with explicit Options.
func NewWith(reg *core.Registry, repo *rules.Repo, engine *rules.Engine, opts Options) *Server {
	if opts.Obs == nil {
		opts.Obs = obs.Default
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.EventQueue <= 0 {
		opts.EventQueue = 1024
	}
	if opts.Tracer == nil {
		opts.Tracer = trace.New(trace.Options{Service: "galleryd"})
	}
	obs.RegisterRuntime(opts.Obs)
	s := &Server{
		reg:       reg,
		repo:      repo,
		engine:    engine,
		health:    opts.Health,
		tenants:   opts.Tenants,
		slo:       opts.SLO,
		incidents: opts.Incidents,
		profiles:  opts.Profiles,
		mux:       http.NewServeMux(),

		obs:            opts.Obs,
		tracer:         opts.Tracer,
		maxBody:        opts.MaxBodyBytes,
		allLatency:     opts.Obs.Histogram("http_request_seconds_all", obs.LatencyBuckets),
		cDispatched:    opts.Obs.Counter("server_engine_dispatch_total"),
		cDropped:       opts.Obs.Counter("server_engine_dispatch_dropped_total"),
		cBlobWriteErrs: opts.Obs.Counter("server_blob_write_errors_total"),

		events: make(chan metricEvent, opts.EventQueue),
		done:   make(chan struct{}),
	}
	// Log pipeline: the ring (queryable at /v1/debug/logs) in front,
	// teeing to the AccessLog writer as plain JSON lines when set. With
	// no ring the writer keeps its original direct handler.
	var next slog.Handler
	if opts.AccessLog != nil {
		next = slog.NewJSONHandler(opts.AccessLog, nil)
	}
	s.logs = opts.Logs
	switch {
	case opts.Logs != nil:
		s.accessLog = slog.New(obslog.NewHandler(opts.Logs, opts.LogLevel, next))
	case next != nil:
		s.accessLog = slog.New(next)
	}
	s.routes()
	if opts.Pprof {
		httpmw.RegisterPprof(s.mux)
	}
	// The actor/auth layer sits outside httpmw so the mux sees the same
	// *Request the middleware holds (route-pattern attribution relies on
	// that); the actor value still flows inward through the derived
	// context. With tenants enabled, authentication replaces the
	// self-declared actor header entirely.
	// Per-tenant RED vectors: with auth on the namespace comes from the
	// verified token; with auth off everything lands in "default", so
	// namespace-scoped SLOs still evaluate.
	tenantOf := func(*http.Request) string { return "" }
	if s.tenants != nil {
		tenantOf = s.tenants.NamespaceOf
	}
	wrapped := httpmw.Wrap(s.mux, httpmw.Options{
		Obs:        s.obs,
		AccessLog:  s.accessLog,
		Tracer:     s.tracer,
		AllLatency: s.allLatency,
		TenantOf:   tenantOf,
	})
	if s.tenants != nil {
		s.h = httpmw.WithAuth(wrapped, s.tenants)
	} else {
		s.h = withActor(wrapped, opts.Obs.Counter("audit_anonymous_actor_total"))
	}
	go s.eventLoop()
	return s
}

// notifyMetricUpdated hands a metric-update event to the dispatch queue
// without blocking the request path. When the queue is full the event is
// dropped (and counted): rule re-evaluation is best-effort and a later
// metric write re-triggers it.
func (s *Server) notifyMetricUpdated(id uuid.UUID) {
	s.notifyMetricUpdatedCtx(context.Background(), id)
}

// notifyMetricUpdatedCtx is notifyMetricUpdated carrying the request's
// trace span (detached: the span link survives the response, request
// cancellation does not) into the rule engine.
func (s *Server) notifyMetricUpdatedCtx(ctx context.Context, id uuid.UUID) {
	if s.engine == nil {
		return
	}
	select {
	case <-s.done:
		s.cDropped.Inc()
		return
	default:
	}
	s.eventWG.Add(1)
	select {
	case s.events <- metricEvent{ctx: trace.Detach(ctx), id: id}:
		s.cDispatched.Inc()
	default:
		s.eventWG.Done()
		s.cDropped.Inc()
	}
}

// eventLoop replays queued metric events into the rule engine, one at a
// time. The engine applies its own worker-pool parallelism when started.
func (s *Server) eventLoop() {
	for {
		select {
		case ev := <-s.events:
			s.engine.MetricUpdatedCtx(ev.ctx, ev.id)
			s.eventWG.Done()
		case <-s.done:
			for {
				select {
				case ev := <-s.events:
					s.engine.MetricUpdatedCtx(ev.ctx, ev.id)
					s.eventWG.Done()
				default:
					return
				}
			}
		}
	}
}

// Flush blocks until every queued metric event has been handed to the
// engine and the engine's own queue has drained. Tests use it to observe
// the effects of asynchronous dispatch deterministically.
func (s *Server) Flush() {
	s.eventWG.Wait()
	if s.engine != nil {
		s.engine.Flush()
	}
}

// Close stops the dispatch goroutine after draining queued events.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// handle registers a route on the mux and records its pattern for the
// classification-coverage test.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routePatterns = append(s.routePatterns, pattern)
	s.mux.HandleFunc(pattern, h)
}

func (s *Server) routes() {
	s.handle("POST /v1/models", s.handleRegisterModel)
	s.handle("GET /v1/models/{id}", s.handleGetModel)
	s.handle("GET /v1/models", s.handleModelsByBase)
	s.handle("POST /v1/models/{id}/evolve", s.handleEvolveModel)
	s.handle("GET /v1/models/{id}/evolution", s.handleEvolution)
	s.handle("POST /v1/models/{id}/deprecate", s.handleDeprecateModel)
	s.handle("GET /v1/models/{id}/versions", s.handleVersions)
	s.handle("GET /v1/models/{id}/production", s.handleProductionVersion)
	s.handle("GET /v1/models/{id}/upstreams", s.handleUpstreams)
	s.handle("GET /v1/models/{id}/downstreams", s.handleDownstreams)
	s.handle("POST /v1/versions/{id}/promote", s.handlePromote)
	s.handle("POST /v1/deps", s.handleAddDep)
	s.handle("DELETE /v1/deps", s.handleRemoveDep)

	s.handle("POST /v1/instances", s.handleUploadInstance)
	s.handle("GET /v1/instances/{id}", s.handleGetInstance)
	s.handle("GET /v1/instances/{id}/blob", s.handleGetBlob)
	s.handle("POST /v1/instances/{id}/deprecate", s.handleDeprecateInstance)
	s.handle("POST /v1/instances/{id}/promote", s.handlePromoteInstance)
	s.handle("POST /v1/instances/{id}/metrics", s.handleInsertMetric)
	s.handle("POST /v1/instances/{id}/metricset", s.handleInsertMetrics)
	s.handle("GET /v1/instances/{id}/metrics", s.handleMetricSeries)
	s.handle("POST /v1/instances/{id}/drift", s.handleDrift)
	s.handle("POST /v1/instances/{id}/skew", s.handleSkew)

	s.handle("POST /v1/instances/{id}/metricsblob", s.handleInsertMetricsBlob)
	s.handle("POST /v1/health/fleet", s.handleFleetHealth)
	if s.health != nil {
		// Continuous health: gateways flush observation windows in, the
		// monitor's verdicts stream out.
		s.handle("POST /v1/health/observations", s.handleHealthObservations)
		s.handle("GET /v1/health/models", s.handleListModelHealth)
		s.handle("GET /v1/health/models/{id}", s.handleGetModelHealth)
	}

	s.handle("POST /v1/search", s.handleSearch)
	s.handle("GET /v1/lineage/{base}", s.handleLineage)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/audit", s.handleListAudit)
	s.handle("POST /v1/audit", s.handleIngestAudit)
	s.handle("GET /v1/audit/entity/{id}", s.handleEntityTimeline)
	s.handle("GET /v1/debug/logs", s.handleDebugLogs)
	s.handle("GET /v1/debug/metrics", s.handleDebugMetrics)
	s.handle("GET /v1/debug/metrics/prom", s.handleDebugMetricsProm)
	s.handle("GET /v1/debug/traces", s.handleListTraces)
	s.handle("GET /v1/debug/traces/{id}", s.handleGetTrace)
	s.handle("POST /v1/debug/traces", s.handleIngestTraces)

	s.handle("POST /v1/rules", s.handleCommitRules)
	s.handle("GET /v1/rules", s.handleListRules)
	s.handle("POST /v1/rules/{id}/select", s.handleSelect)
	s.handle("GET /v1/alerts", s.handleAlerts)

	if s.tenants != nil {
		s.tenantRoutes()
	}
	if s.slo != nil {
		s.sloRoutes()
	}
	if s.incidents != nil {
		s.incidentRoutes()
	}
	if s.profiles != nil {
		s.profileRoutes()
	}
}

// --- plumbing ---

// jsonBufPool amortizes encode buffers across requests: responses are
// staged in a pooled buffer so Content-Length can be set and the write
// happens in one syscall, instead of json.Encoder allocating per call.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer jsonBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var maxBytes *http.MaxBytesError
	switch {
	case errors.As(err, &maxBytes):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, core.ErrNotFound), errors.Is(err, relstore.ErrNotFound),
		errors.Is(err, tenant.ErrNotFound), errors.Is(err, slo.ErrNotFound),
		errors.Is(err, incident.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, incident.ErrSuppressed):
		status = http.StatusTooManyRequests
	case errors.Is(err, core.ErrBadSpec), errors.Is(err, rules.ErrInvalidRule),
		errors.Is(err, tenant.ErrBadSpec), errors.Is(err, slo.ErrBadSpec),
		errors.Is(err, slo.ErrNoSource):
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrCycle), errors.Is(err, relstore.ErrDuplicate), errors.Is(err, tenant.ErrExists):
		status = http.StatusConflict
	case errors.Is(err, tenant.ErrForbidden), errors.Is(err, tenant.ErrModelQuota):
		status = http.StatusForbidden
	case errors.Is(err, tenant.ErrBlobQuota):
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, api.Error{Error: err.Error()})
}

// decode reads a bounded JSON body. The ResponseWriter is handed to
// MaxBytesReader so the connection is closed properly on overflow, and
// the resulting *http.MaxBytesError surfaces as 413 via writeErr.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", core.ErrBadSpec, err)
	}
	return nil
}

func pathUUID(r *http.Request, name string) (uuid.UUID, error) {
	u, err := uuid.Parse(r.PathValue(name))
	if err != nil {
		return uuid.Nil, fmt.Errorf("%w: bad %s: %v", core.ErrBadSpec, name, err)
	}
	return u, nil
}

// --- models ---

func (s *Server) handleRegisterModel(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterModelRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	spec := core.ModelSpec{
		BaseVersionID: req.BaseVersionID,
		Project:       req.Project,
		Name:          req.Name,
		Owner:         req.Owner,
		Team:          req.Team,
		Domain:        req.Domain,
		Description:   req.Description,
		InitialMajor:  req.InitialMajor,
	}
	for _, up := range req.Upstreams {
		u, err := uuid.Parse(up)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad upstream id %q", core.ErrBadSpec, up))
			return
		}
		spec.Upstreams = append(spec.Upstreams, u)
	}
	release, err := s.reserveModelQuota(r, spec.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.RegisterModelCtx(r.Context(), spec)
	if err != nil {
		release()
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, modelDTO(m))
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.GetModel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTO(m))
}

func (s *Server) handleModelsByBase(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("base_version_id")
	if base == "" {
		writeErr(w, fmt.Errorf("%w: base_version_id query parameter required", core.ErrBadSpec))
		return
	}
	ms, err := s.reg.ModelsByBase(base)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTOs(ms))
}

func (s *Server) handleEvolveModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeModelIDWrite(r, id); err != nil {
		writeErr(w, err)
		return
	}
	var req api.EvolveModelRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.EvolveModelCtx(r.Context(), id, req.Description)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, modelDTO(m))
}

func (s *Server) handleEvolution(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	chain, err := s.reg.Evolution(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelDTOs(chain))
}

func (s *Server) handleDeprecateModel(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	owner, err := s.authorizeModelIDWrite(r, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	retired, err := s.reg.DeprecateModelReport(r.Context(), id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if retired {
		// A deprecated model no longer occupies one of the namespace's
		// model slots; the report is true exactly once per model, so the
		// release cannot double-credit.
		s.releaseModelQuota(r.Context(), owner)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	vs, err := s.reg.VersionHistory(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]api.VersionRecord, len(vs))
	for i, v := range vs {
		out[i] = versionDTO(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProductionVersion(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	v, err := s.reg.ProductionVersionCtx(r.Context(), id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, versionDTO(v))
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.tenants != nil {
		v, err := s.reg.Version(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		if _, err := s.authorizeModelIDWrite(r, v.ModelID); err != nil {
			writeErr(w, err)
			return
		}
	}
	if err := s.reg.PromoteCtx(r.Context(), id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUpstreams(w http.ResponseWriter, r *http.Request)   { s.handleDeps(w, r, true) }
func (s *Server) handleDownstreams(w http.ResponseWriter, r *http.Request) { s.handleDeps(w, r, false) }

func (s *Server) handleDeps(w http.ResponseWriter, r *http.Request, up bool) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var ids []uuid.UUID
	if up {
		ids, err = s.reg.Upstreams(id)
	} else {
		ids, err = s.reg.Downstreams(id)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]string, len(ids))
	for i, u := range ids {
		out[i] = u.String()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAddDep(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.depPair(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Ownership follows the dependent side: adding the edge bumps from's
	// version chain, while to is only referenced — depending on another
	// team's model is the normal cross-team case.
	if _, err := s.authorizeModelIDWrite(r, from); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.AddDependency(from, to); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRemoveDep(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.depPair(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeModelIDWrite(r, from); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.RemoveDependency(from, to); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) depPair(w http.ResponseWriter, r *http.Request) (from, to uuid.UUID, err error) {
	var req api.DependencyRequest
	if err := s.decode(w, r, &req); err != nil {
		return uuid.Nil, uuid.Nil, err
	}
	from, err = uuid.Parse(req.From)
	if err != nil {
		return uuid.Nil, uuid.Nil, fmt.Errorf("%w: bad from id", core.ErrBadSpec)
	}
	to, err = uuid.Parse(req.To)
	if err != nil {
		return uuid.Nil, uuid.Nil, fmt.Errorf("%w: bad to id", core.ErrBadSpec)
	}
	return from, to, nil
}

// --- instances ---

func (s *Server) handleUploadInstance(w http.ResponseWriter, r *http.Request) {
	var req api.UploadInstanceRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	modelID, err := uuid.Parse(req.ModelID)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad model_id", core.ErrBadSpec))
		return
	}
	owner, err := s.authorizeModelIDWrite(r, modelID)
	if err != nil {
		writeErr(w, err)
		return
	}
	release, err := s.reserveBlobQuota(r.Context(), owner, int64(len(req.Blob)))
	if err != nil {
		writeErr(w, err)
		return
	}
	in, err := s.reg.UploadInstanceCtx(r.Context(), core.InstanceSpec{
		ModelID:      modelID,
		Name:         req.Name,
		City:         req.City,
		Framework:    req.Framework,
		TrainingData: req.TrainingData,
		CodePointer:  req.CodePointer,
		Seed:         req.Seed,
		Epochs:       req.Epochs,
		Hyperparams:  req.Hyperparams,
		Features:     req.Features,
	}, req.Blob)
	if err != nil {
		release()
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, instanceDTO(in))
}

func (s *Server) handleGetInstance(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	in, err := s.reg.GetInstanceCtx(r.Context(), id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTO(in))
}

func (s *Server) handleGetBlob(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	data, err := s.reg.FetchBlobCtx(r.Context(), id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		// The response is committed; all we can do is record that the
		// client went away mid-transfer — in the log ring (correlated to
		// this request's trace) and on the instance's audit timeline, so
		// the aborted transfer is visible post-hoc next to the serving
		// events it may explain.
		s.cBlobWriteErrs.Inc()
		if s.accessLog != nil {
			s.accessLog.ErrorContext(r.Context(), "blob write failed",
				"instance", id.String(), "bytes", len(data), "err", err.Error())
		}
		_ = s.reg.Audit().Record(r.Context(), audit.Event{
			Action:     audit.ActionBlobServeFailed,
			EntityType: audit.EntityInstance,
			EntityID:   id.String(),
			Before:     fmt.Sprintf("serving %d bytes", len(data)),
			After:      "transfer aborted",
			Detail:     err.Error(),
		})
	}
}

// handlePromoteInstance promotes the version record an instance realizes —
// the remote form of the rule engine's deploy callback, used by operators
// and tests to flip what serving gateways pick up on their next refresh.
func (s *Server) handlePromoteInstance(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeInstanceWrite(r, id); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.PromoteInstanceCtx(r.Context(), id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeprecateInstance(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeInstanceWrite(r, id); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.DeprecateInstanceCtx(r.Context(), id); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInsertMetric(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeInstanceWrite(r, id); err != nil {
		writeErr(w, err)
		return
	}
	var req api.InsertMetricRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	m, err := s.reg.InsertMetricCtx(r.Context(), id, req.Name, core.Scope(req.Scope), req.Value)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Metric updates are rule-engine events (paper Fig. 8, Client 2),
	// dispatched off the request path.
	s.notifyMetricUpdatedCtx(r.Context(), id)
	writeJSON(w, http.StatusCreated, metricDTO(m))
}

func (s *Server) handleInsertMetrics(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if _, err := s.authorizeInstanceWrite(r, id); err != nil {
		writeErr(w, err)
		return
	}
	var req api.InsertMetricsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.InsertMetrics(id, core.Scope(req.Scope), req.Values); err != nil {
		writeErr(w, err)
		return
	}
	s.notifyMetricUpdatedCtx(r.Context(), id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetricSeries(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	ms, err := s.reg.MetricSeries(id, q.Get("name"), core.Scope(q.Get("scope")))
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]api.Metric, len(ms))
	for i, m := range ms {
		out[i] = metricDTO(m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.DriftRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckDrift(id, core.DriftConfig{
		Metric: req.Metric, Window: req.Window, Baseline: req.Baseline, Threshold: req.Threshold,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.DriftReport{
		InstanceID:   rep.InstanceID.String(),
		Metric:       rep.Metric,
		BaselineMean: rep.BaselineMean,
		RecentMean:   rep.RecentMean,
		Degradation:  rep.Degradation,
		Drifted:      rep.Drifted,
		Checked:      rep.Checked,
		Samples:      rep.Samples,
	})
}

func (s *Server) handleSkew(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.SkewRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckSkew(id, core.SkewConfig{Metric: req.Metric, Threshold: req.Threshold})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SkewReport{
		InstanceID:   rep.InstanceID.String(),
		Metric:       rep.Metric,
		OfflineScope: string(rep.OfflineScope),
		Offline:      rep.Offline,
		Production:   rep.Production,
		Gap:          rep.Gap,
		Skewed:       rep.Skewed,
		Checked:      rep.Checked,
	})
}

// handleInsertMetricsBlob accepts the paper's raw "<metric>:<value>" blob
// format (§3.3.3); the scope travels as a query parameter.
func (s *Server) handleInsertMetricsBlob(w http.ResponseWriter, r *http.Request) {
	id, err := pathUUID(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	owner, err := s.authorizeInstanceWrite(r, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	scope := core.Scope(r.URL.Query().Get("scope"))
	limit := min(int64(16<<20), s.maxBody)
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var maxBytes *http.MaxBytesError
		if errors.As(err, &maxBytes) {
			writeErr(w, err) // 413
			return
		}
		writeErr(w, fmt.Errorf("%w: read metrics blob: %v", core.ErrBadSpec, err))
		return
	}
	// The parsed pairs land as stored metric rows, so bulk ingestion is
	// bounded by the same byte quota as instance blobs — without the
	// charge, this route would be an unmetered path to unbounded storage.
	release, err := s.reserveBlobQuota(r.Context(), owner, int64(len(blob)))
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.InsertMetricsBlob(id, scope, blob); err != nil {
		release()
		writeErr(w, err)
		return
	}
	s.notifyMetricUpdatedCtx(r.Context(), id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	var req api.FleetHealthRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reg.CheckFleetHealth(core.FleetHealthConfig{
		Project: req.Project,
		Metric:  req.Metric,
		Drift: core.DriftConfig{
			Metric: req.Metric, Window: req.Drift.Window,
			Baseline: req.Drift.Baseline, Threshold: req.Drift.Threshold,
		},
		Skew:  core.SkewConfig{Metric: req.Metric, Threshold: req.Skew.Threshold},
		Limit: req.Limit,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	out := api.FleetHealth{
		Project: rep.Project, Total: rep.Total, Drifted: rep.Drifted,
		Skewed: rep.Skewed, LowMetadata: rep.LowMetadata, MissingMetrics: rep.MissingMetrics,
	}
	for _, ih := range rep.Instances {
		out.Instances = append(out.Instances, api.InstanceHealth{
			InstanceID:   ih.InstanceID.String(),
			ModelName:    ih.ModelName,
			City:         ih.City,
			Completeness: ih.Completeness,
			HasMetrics:   ih.HasMetrics,
			Drift: api.DriftReport{
				InstanceID: ih.InstanceID.String(), Metric: ih.Drift.Metric,
				BaselineMean: ih.Drift.BaselineMean, RecentMean: ih.Drift.RecentMean,
				Degradation: ih.Drift.Degradation, Drifted: ih.Drift.Drifted,
				Checked: ih.Drift.Checked, Samples: ih.Drift.Samples,
			},
			Skew: api.SkewReport{
				InstanceID: ih.InstanceID.String(), Metric: ih.Skew.Metric,
				OfflineScope: string(ih.Skew.OfflineScope), Offline: ih.Skew.Offline,
				Production: ih.Skew.Production, Gap: ih.Skew.Gap,
				Skewed: ih.Skew.Skewed, Checked: ih.Skew.Checked,
			},
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// --- search / lineage / stats ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req api.SearchRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	filter, err := FilterFromSearch(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	ins, err := s.reg.SearchInstances(filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTOs(ins))
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	base := r.PathValue("base")
	ins, err := s.reg.Lineage(base)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTOs(ins))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	models, instances, metrics := s.reg.Counts()
	st := api.Stats{Models: models, Instances: instances, Metrics: metrics}

	// Headline observability numbers; the full breakdown lives at
	// /v1/debug/metrics.
	st.Requests = s.obs.SumCounters("http_requests_total")
	st.P50LatencyMS = s.allLatency.Quantile(0.50) * 1000
	st.P95LatencyMS = s.allLatency.Quantile(0.95) * 1000
	cs := s.reg.DAL().CacheStats()
	if total := cs.Hits + cs.Misses; total > 0 {
		st.CacheHitRatio = float64(cs.Hits) / float64(total)
	}
	bs := s.reg.DAL().Blobs().Stats()
	st.BlobPuts, st.BlobGets = bs.Puts, bs.Gets
	if s.engine != nil {
		st.RuleEvaluations = s.engine.Stats().Evaluations
	}
	st.EngineDispatches = s.cDispatched.Value()
	st.EngineDrops = s.cDropped.Value()
	writeJSON(w, http.StatusOK, st)
}

// handleDebugMetrics renders the full metrics registry: per-route request
// counters and latency histograms, DAL/relstore/blobstore counters, rule
// engine activity, and dispatch-queue health.
func (s *Server) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	// no-store: dashboards poll this; a cached snapshot is a wrong one.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.obs.Snapshot())
}

// handleDebugMetricsProm renders the same registry in Prometheus text
// exposition format 0.0.4, for standard scrapers.
func (s *Server) handleDebugMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", httpmw.PromContentType)
	w.Header().Set("Cache-Control", "no-store")
	_ = s.obs.WriteProm(w)
}

// --- rules ---

func (s *Server) handleCommitRules(w http.ResponseWriter, r *http.Request) {
	if s.repo == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	var req api.CommitRulesRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var upserts []*rules.Rule
	for _, raw := range req.Upserts {
		rule, err := rules.ParseRule(raw)
		if err != nil {
			writeErr(w, err)
			return
		}
		upserts = append(upserts, rule)
	}
	commit, err := s.repo.Commit(req.Author, req.Message, upserts, req.Deletes)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"hash": commit.Hash})
}

func (s *Server) handleListRules(w http.ResponseWriter, r *http.Request) {
	if s.repo == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, s.repo.Active())
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	ruleID := r.PathValue("id")
	var req api.SelectModelRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	filter, err := FilterFromSearch(req.Filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	in, err := s.engine.SelectModel(ruleID, filter)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, instanceDTO(in))
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeErr(w, fmt.Errorf("%w: rule engine not enabled", core.ErrNotFound))
		return
	}
	alerts := s.engine.Alerts()
	out := make([]api.Alert, len(alerts))
	for i, a := range alerts {
		out[i] = api.Alert{
			Time:       a.Time,
			RuleUUID:   a.RuleUUID,
			InstanceID: uuidStr(a.InstanceID),
			Action:     a.Action,
			Message:    a.Message,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// FilterFromSearch translates the wire constraint list (paper Listing 5
// shape) into a core.InstanceFilter.
func FilterFromSearch(req api.SearchRequest) (core.InstanceFilter, error) {
	f := core.InstanceFilter{IncludeDeprecated: req.IncludeDeprecated, Limit: req.Limit}
	for _, c := range req.Constraints {
		op, err := relstore.ParseOp(c.Operator)
		if err != nil {
			return f, fmt.Errorf("%w: %v", core.ErrBadSpec, err)
		}
		switch c.Field {
		case "projectName", "project":
			f.Project = c.Value
		case "modelName", "name":
			f.Name = c.Value
		case "city":
			f.City = c.Value
		case "baseVersionId", "base_version_id":
			f.BaseVersionID = c.Value
		case "framework":
			f.Framework = c.Value
		case "modelId", "model_id":
			id, err := uuid.Parse(c.Value)
			if err != nil {
				return f, fmt.Errorf("%w: bad model_id %q", core.ErrBadSpec, c.Value)
			}
			f.ModelID = id
		case "metricName":
			f.MetricName = c.Value
		case "metricScope":
			f.MetricScope = core.Scope(c.Value)
		case "metricValue":
			f.MetricOp = op
			f.MetricValue = c.Number
		default:
			return f, fmt.Errorf("%w: unknown search field %q", core.ErrBadSpec, c.Field)
		}
		// Metadata fields only support equality on the wire; metricValue
		// carries the comparison operator.
		if c.Field != "metricValue" && op != relstore.OpEq {
			return f, fmt.Errorf("%w: field %s only supports operator equal", core.ErrBadSpec, c.Field)
		}
	}
	if f.MetricName != "" && f.MetricOp == 0 {
		return f, fmt.Errorf("%w: metricName constraint needs a metricValue constraint", core.ErrBadSpec)
	}
	return f, nil
}

// --- DTO conversions ---

func modelDTO(m *core.Model) api.Model {
	return api.Model{
		ID:            m.ID.String(),
		BaseVersionID: m.BaseVersionID,
		Project:       m.Project,
		Name:          m.Name,
		Owner:         m.Owner,
		Team:          m.Team,
		Domain:        m.Domain,
		Description:   m.Description,
		Major:         m.Major,
		PrevModel:     uuidStr(m.PrevModel),
		NextModel:     uuidStr(m.NextModel),
		Created:       m.Created,
		Deprecated:    m.Deprecated,
	}
}

func modelDTOs(ms []*core.Model) []api.Model {
	out := make([]api.Model, len(ms))
	for i, m := range ms {
		out[i] = modelDTO(m)
	}
	return out
}

func instanceDTO(in *core.Instance) api.Instance {
	return api.Instance{
		ID:            in.ID.String(),
		ModelID:       in.ModelID.String(),
		BaseVersionID: in.BaseVersionID,
		Project:       in.Project,
		Name:          in.Name,
		City:          in.City,
		Framework:     in.Framework,
		TrainingData:  in.TrainingData,
		CodePointer:   in.CodePointer,
		Seed:          in.Seed,
		Epochs:        in.Epochs,
		Hyperparams:   in.Hyperparams,
		Features:      in.Features,
		BlobLocation:  in.BlobLocation,
		Created:       in.Created,
		Deprecated:    in.Deprecated,
	}
}

func instanceDTOs(ins []*core.Instance) []api.Instance {
	out := make([]api.Instance, len(ins))
	for i, in := range ins {
		out[i] = instanceDTO(in)
	}
	return out
}

func metricDTO(m *core.Metric) api.Metric {
	return api.Metric{
		ID:         m.ID.String(),
		InstanceID: m.InstanceID.String(),
		ModelID:    m.ModelID.String(),
		Name:       m.Name,
		Scope:      string(m.Scope),
		Value:      m.Value,
		At:         m.At,
	}
}

func versionDTO(v *core.VersionRecord) api.VersionRecord {
	return api.VersionRecord{
		ID:          v.ID.String(),
		ModelID:     v.ModelID.String(),
		Major:       v.Major,
		Minor:       v.Minor,
		Version:     v.String(),
		Cause:       string(v.Cause),
		InstanceID:  uuidStr(v.InstanceID),
		TriggeredBy: uuidStr(v.TriggeredBy),
		Created:     v.Created,
		Production:  v.Production,
	}
}

func uuidStr(u uuid.UUID) string {
	if u.IsNil() {
		return ""
	}
	return u.String()
}
