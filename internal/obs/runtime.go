package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// processStart anchors the uptime gauges. Package init runs before any
// server accepts traffic, so this is the process start for observability
// purposes.
var processStart = time.Now()

// ProcessStart reports when this process initialized, the value behind
// process_start_time_seconds and the build-info stamp in incident
// bundles.
func ProcessStart() time.Time { return processStart }

// BuildVersion reports the main module's version as recorded by the Go
// linker ("(devel)" for plain `go build`, a tag or pseudo-version for
// module-aware installs).
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// memStatsCache amortizes runtime.ReadMemStats — a stop-the-world call —
// across the several gauge funcs that read it in one snapshot (and across
// rapid snapshot polls).
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	ttl  time.Duration
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.ttl {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// RegisterRuntime registers process-health gauges on r, turning
// GET /v1/debug/metrics into a lightweight profile:
//
//	runtime_goroutines            live goroutine count
//	runtime_heap_alloc_bytes      live heap bytes
//	runtime_heap_sys_bytes        heap bytes held from the OS
//	runtime_gc_runs_total         completed GC cycles
//	runtime_gc_pause_last_seconds most recent GC stop-the-world pause
//	gallery_build_info            constant 1, version labels identify the binary
//	process_start_time_seconds    Unix time the process initialized
//	process_uptime_seconds        seconds since then
//
// Values derived from MemStats share a ~1s cache so snapshot polling
// doesn't itself become a stop-the-world generator.
func RegisterRuntime(r *Registry) {
	cache := &memStatsCache{ttl: time.Second}
	// The Prometheus build-info idiom: a constant-1 gauge whose labels
	// carry the identity, joinable against any other series.
	r.GaugeFunc(Name("gallery_build_info", "version", BuildVersion(), "go_version", runtime.Version()),
		func() float64 { return 1 })
	r.GaugeFunc("process_start_time_seconds", func() float64 {
		return float64(processStart.UnixNano()) / 1e9
	})
	r.GaugeFunc("process_uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
	r.GaugeFunc("runtime_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime_heap_alloc_bytes", func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	r.GaugeFunc("runtime_heap_sys_bytes", func() float64 {
		return float64(cache.get().HeapSys)
	})
	r.GaugeFunc("runtime_gc_runs_total", func() float64 {
		return float64(cache.get().NumGC)
	})
	r.GaugeFunc("runtime_gc_pause_last_seconds", func() float64 {
		m := cache.get()
		if m.NumGC == 0 {
			return 0
		}
		return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	})
}
