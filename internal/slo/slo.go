// Package slo is Gallery's service-level-objective engine: the layer
// that turns raw per-tenant/per-model RED telemetry into explicit,
// continuously evaluated service targets.
//
// The paper's thesis is closed-loop lifecycle automation — signals feed
// rules that retrain, deprecate, or roll back. Telemetry alone cannot
// close that loop: nothing in a latency histogram says what "healthy"
// means for a tenant. An Objective does: "99% of the ads namespace's
// requests succeed" or "99% of model ctr's predictions finish within
// 100ms". Objectives are declared over /v1/slo (or galleryctl slo),
// persisted in the relational store over the WAL like every other piece
// of control-plane state, and evaluated on a tick against the
// bounded-cardinality metric vectors recorded by the HTTP middleware and
// the serving gateway.
//
// Evaluation uses the multi-window, multi-burn-rate method: an error
// budget of (1 - target) and a burn rate of (bad/total)/(1 - target)
// measured over paired windows — fast (~5m confirmed by ~1h) to page on
// sharp regressions within minutes, slow (~30m confirmed by ~6h) to
// catch slow bleeds. Requiring both windows of a pair keeps one bad
// scrape from paging anyone, and the long window auto-resolves the alert
// once the burn stops. Window arithmetic runs over ring-buffered
// cumulative good/bad counts indexed by evaluator tick, so results
// depend only on the tick sequence — the injectable clock timestamps
// transitions but never drives the math, which is what keeps the
// frozen-clock experiments deterministic.
//
// Breach transitions emit slo.burn / slo.recovered audit events and —
// for model-scoped objectives whose model resolves to a production
// instance — fire into the rules engine, where a rule like
// `slo.event == "burn"` can deprecate or roll back automatically.
// Current state is exported as slo_* gauges and GET /v1/slo/status.
package slo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gallery/internal/audit"
	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Table is the objectives table in the metadata store.
const Table = "slo_objectives"

// Actor stamped on audit events the evaluator emits.
const evaluatorActor = "slo-evaluator"

// Kind is what an objective measures.
type Kind string

const (
	// KindAvailability targets a success ratio: good = non-5xx requests.
	KindAvailability Kind = "availability"
	// KindLatency targets a latency quantile: good = requests finishing
	// within LatencyThreshold seconds. The threshold should sit on a
	// histogram bucket bound; between bounds it rounds down.
	KindLatency Kind = "latency"
)

// Sentinel errors, mapped onto HTTP statuses by the server.
var (
	ErrNotFound = errors.New("slo: objective not found")
	ErrBadSpec  = errors.New("slo: bad objective spec")
	// ErrNoSource rejects an objective whose scope this process has no
	// metric source for — e.g. a model-scoped objective on the registry
	// daemon, whose predict RED vectors live in the serving gateway.
	// Accepting it would only ever report no-data.
	ErrNoSource = errors.New("slo: no metric source for objective scope")
)

// Objective is one declared service target. Namespace is always set;
// ModelID narrows the objective to one model's predict traffic (recorded
// by the serving gateway) instead of the namespace's whole request
// stream.
type Objective struct {
	ID               string
	Namespace        string
	ModelID          string
	Kind             Kind
	Target           float64 // e.g. 0.99; 0 < Target < 1
	LatencyThreshold float64 // seconds; required for KindLatency
	Created          time.Time
}

// scope renders the objective's subject for audit detail lines.
func (o Objective) scope() string {
	if o.ModelID != "" {
		return o.Namespace + "/" + o.ModelID
	}
	return o.Namespace
}

// EventSink receives breach transitions for model-scoped objectives.
// *rules.Engine satisfies it.
type EventSink interface {
	SLOEvent(ctx context.Context, instanceID uuid.UUID, event string, fields map[string]any)
}

// BurnSink receives every burn transition regardless of scope —
// namespace- and model-level objectives alike — unlike EventSink, which
// only fires for model-scoped objectives that resolve to an instance.
// The incident flight recorder satisfies it.
type BurnSink interface {
	SLOBurn(ctx context.Context, o Objective, severity string, burnFast, burnSlow, budget float64)
}

// InstanceResolver maps a model ID (as it appears in the predict path)
// to its current production instance. Burn events only dispatch into the
// rules engine when the model resolves — rules run against an instance
// environment, and a namespace or an unserved model has none.
type InstanceResolver func(modelID string) (uuid.UUID, bool)

// Source supplies cumulative good/bad counts for an objective. ok=false
// means the source cannot answer for this objective at all (wrong shape),
// which surfaces as no-data rather than a healthy 0-burn.
type Source interface {
	Counts(o Objective) (good, bad int64, ok bool)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(o Objective) (good, bad int64, ok bool)

// Counts implements Source.
func (f SourceFunc) Counts(o Objective) (int64, int64, bool) { return f(o) }

// VecSource reads the RED vectors recorded by httpmw.Wrap (namespace
// scope) and the serve predict path (model scope). Any nil field makes
// the corresponding scope answer ok=false.
type VecSource struct {
	// Namespace scope: one label {namespace}.
	Requests *obs.CounterVec
	Errors   *obs.CounterVec
	Latency  *obs.HistogramVec
	// Model scope: two labels {namespace, model}.
	ModelRequests *obs.CounterVec
	ModelErrors   *obs.CounterVec
	ModelLatency  *obs.HistogramVec
}

// Counts implements Source.
func (s VecSource) Counts(o Objective) (int64, int64, bool) {
	if o.ModelID != "" {
		switch o.Kind {
		case KindLatency:
			if s.ModelLatency == nil {
				return 0, 0, false
			}
			h := s.ModelLatency.Peek2(o.Namespace, o.ModelID)
			if h == nil {
				return 0, 0, true
			}
			good := h.CountAtOrBelow(o.LatencyThreshold)
			return good, h.Count() - good, true
		default:
			if s.ModelRequests == nil || s.ModelErrors == nil {
				return 0, 0, false
			}
			req := s.ModelRequests.Get2(o.Namespace, o.ModelID)
			bad := s.ModelErrors.Get2(o.Namespace, o.ModelID)
			return req - bad, bad, true
		}
	}
	switch o.Kind {
	case KindLatency:
		if s.Latency == nil {
			return 0, 0, false
		}
		h := s.Latency.Peek(o.Namespace)
		if h == nil {
			return 0, 0, true
		}
		good := h.CountAtOrBelow(o.LatencyThreshold)
		return good, h.Count() - good, true
	default:
		if s.Requests == nil || s.Errors == nil {
			return 0, 0, false
		}
		req := s.Requests.Get(o.Namespace)
		bad := s.Errors.Get(o.Namespace)
		return req - bad, bad, true
	}
}

// Config tunes the evaluator. Durations are converted to whole ticks;
// the zero value gets production defaults.
type Config struct {
	// Tick is the evaluation cadence (and ring resolution). Default 15s.
	Tick time.Duration
	// Fast pair: short window confirmed by long window, both at FastBurn.
	// Defaults 5m / 1h at burn 14.4 (exhausts a 30-day budget in ~2 days).
	FastShort time.Duration
	FastLong  time.Duration
	FastBurn  float64
	// Slow pair. Defaults 30m / 6h at burn 6 (~5 days to exhaustion).
	SlowShort time.Duration
	SlowLong  time.Duration
	SlowBurn  float64
	// MinSamples is the fewest requests a window must hold before its
	// burn rate counts; below it the window reads 0. When history is
	// shorter than a window, the floor scales up by the truncation
	// factor, so a brief blip right after startup cannot pass for a
	// long-window burn. Default 10.
	MinSamples int64

	Clock     clock.Clock
	UUIDs     *uuid.Generator
	Obs       *obs.Registry
	Audit     *audit.Log
	Events    EventSink
	Instances InstanceResolver
	// Burns, when set, is called for every burn transition after the
	// audit record, before any rules dispatch. Evaluate fires it outside
	// the service lock, so the sink may call back into Statuses.
	Burns BurnSink
}

func (c Config) defaults() Config {
	if c.Tick <= 0 {
		c.Tick = 15 * time.Second
	}
	if c.FastShort <= 0 {
		c.FastShort = 5 * time.Minute
	}
	if c.FastLong <= 0 {
		c.FastLong = time.Hour
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowShort <= 0 {
		c.SlowShort = 30 * time.Minute
	}
	if c.SlowLong <= 0 {
		c.SlowLong = 6 * time.Hour
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.UUIDs == nil {
		c.UUIDs = uuid.NewGenerator()
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	return c
}

// ticks converts a window to whole evaluator ticks, minimum 1.
func (c Config) ticks(d time.Duration) int {
	n := int(d / c.Tick)
	if n < 1 {
		n = 1
	}
	return n
}

// sample is one tick's cumulative totals.
type sample struct{ good, bad int64 }

// state is the evaluator's per-objective memory.
type state struct {
	obj  Objective
	ring []sample // cumulative totals, indexed by tick % len
	n    int      // samples recorded (saturates at len(ring))

	breached   bool
	severity   string // "fast" | "slow" when breached
	burnFast   float64
	burnSlow   float64
	budget     float64
	noData     bool
	lastChange time.Time
}

// push records this tick's cumulative totals.
func (st *state) push(tick int64, s sample) {
	st.ring[tick%int64(len(st.ring))] = s
	if st.n < len(st.ring) {
		st.n++
	}
}

// window returns the good/bad delta over the last k ticks (current tick
// included) and the span actually covered. With less history than k, the
// whole recorded history is the window — partial windows evaluate rather
// than blocking alerts until an hour of uptime accumulates — and the
// caller compensates for the truncation (see the MinSamples scaling in
// Evaluate).
func (st *state) window(tick int64, k int) (sample, int) {
	if st.n == 0 {
		return sample{}, 0
	}
	if k > st.n-1 {
		k = st.n - 1
	}
	cur := st.ring[tick%int64(len(st.ring))]
	base := st.ring[(tick-int64(k))%int64(len(st.ring))]
	g, b := cur.good-base.good, cur.bad-base.bad
	// Counter resets (process restart behind the same vector) would read
	// negative; clamp to zero rather than crediting the budget.
	if g < 0 {
		g = 0
	}
	if b < 0 {
		b = 0
	}
	return sample{good: g, bad: b}, k
}

// Status is one objective's current evaluation, served at /v1/slo/status.
type Status struct {
	Objective       Objective
	Breached        bool
	Severity        string
	BurnFast        float64
	BurnSlow        float64
	BudgetRemaining float64
	NoData          bool
	LastChange      time.Time
}

// Service owns objective persistence and evaluation for one process.
type Service struct {
	store *relstore.Store
	src   Source
	cfg   Config

	fastShort, fastLong int // ticks
	slowShort, slowLong int

	mu    sync.Mutex
	objs  map[string]*state
	ticks int64

	stop chan struct{}
	done chan struct{}

	cEvaluations *obs.Counter
	cBurns       *obs.Counter
	cRecoveries  *obs.Counter
}

// Open declares the objectives table on store (idempotent over a
// recovered store), loads every persisted objective, and returns a
// Service evaluating them against src.
func Open(store *relstore.Store, src Source, cfg Config) (*Service, error) {
	cfg = cfg.defaults()
	if err := store.CreateTable(schema()); err != nil {
		return nil, err
	}
	s := &Service{
		store:        store,
		src:          src,
		cfg:          cfg,
		fastShort:    cfg.ticks(cfg.FastShort),
		fastLong:     cfg.ticks(cfg.FastLong),
		slowShort:    cfg.ticks(cfg.SlowShort),
		slowLong:     cfg.ticks(cfg.SlowLong),
		objs:         make(map[string]*state),
		cEvaluations: cfg.Obs.Counter("slo_evaluations_total"),
		cBurns:       cfg.Obs.Counter("slo_burn_events_total"),
		cRecoveries:  cfg.Obs.Counter("slo_recovered_events_total"),
	}
	rows, err := store.Select(relstore.Query{Table: Table})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		o := rowToObjective(r)
		s.objs[o.ID] = s.newState(o)
	}
	return s, nil
}

// newState sizes the ring to the longest window plus the current tick.
func (s *Service) newState(o Objective) *state {
	return &state{obj: o, ring: make([]sample, s.slowLong+1), budget: 1}
}

// Create validates, persists, and starts evaluating an objective. The
// ID is generated here; the caller's is ignored.
func (s *Service) Create(ctx context.Context, o Objective) (Objective, error) {
	if o.Namespace == "" {
		return Objective{}, fmt.Errorf("%w: namespace required", ErrBadSpec)
	}
	switch o.Kind {
	case KindAvailability:
		if o.LatencyThreshold != 0 {
			return Objective{}, fmt.Errorf("%w: latency_threshold is meaningless for availability", ErrBadSpec)
		}
	case KindLatency:
		if o.LatencyThreshold <= 0 {
			return Objective{}, fmt.Errorf("%w: latency objective needs latency_threshold > 0", ErrBadSpec)
		}
	default:
		return Objective{}, fmt.Errorf("%w: unknown kind %q", ErrBadSpec, o.Kind)
	}
	if o.Target <= 0 || o.Target >= 1 {
		return Objective{}, fmt.Errorf("%w: target must be in (0, 1), got %v", ErrBadSpec, o.Target)
	}
	// Probe the source: ok=false means this process cannot answer for the
	// objective's shape at all (VecSource reports capability, not data),
	// so it would sit at no-data forever. Reject with a pointed error
	// instead. Objectives restored from the store still surface no-data,
	// covering deployments whose wiring changed under persisted state.
	if _, _, ok := s.src.Counts(o); !ok {
		scope := "namespace"
		if o.ModelID != "" {
			scope = "model"
		}
		return Objective{}, fmt.Errorf("%w: %s-scoped objectives are not evaluable in this process (predict metrics are recorded by the serving gateway)", ErrNoSource, scope)
	}
	o.ID = s.cfg.UUIDs.New().String()
	o.Created = s.cfg.Clock.Now()
	if err := s.store.InsertCtx(ctx, Table, objectiveToRow(o)); err != nil {
		return Objective{}, err
	}
	s.mu.Lock()
	s.objs[o.ID] = s.newState(o)
	s.mu.Unlock()
	s.audit(ctx, "", audit.ActionSLOCreate, o, fmt.Sprintf("%s %s target %v", o.Kind, o.scope(), o.Target))
	return o, nil
}

// Delete removes an objective and its gauges. The persistent delete
// happens first: if it fails, the objective stays monitored and
// consistent, rather than dropping out of memory only to resurrect from
// the store on the next restart.
func (s *Service) Delete(ctx context.Context, id string) error {
	s.mu.Lock()
	st, ok := s.objs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err := s.store.DeleteCtx(ctx, Table, id); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objs, id)
	s.mu.Unlock()
	for _, g := range []string{"slo_burn_rate_fast", "slo_burn_rate_slow", "slo_breached", "slo_error_budget_remaining"} {
		s.cfg.Obs.RemoveGauge(obs.Name(g, "slo", id))
	}
	s.audit(ctx, "", audit.ActionSLODelete, st.obj, st.obj.scope())
	return nil
}

// List returns every objective, oldest first.
func (s *Service) List() []Objective {
	s.mu.Lock()
	out := make([]Objective, 0, len(s.objs))
	for _, st := range s.objs {
		out = append(out, st.obj)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get returns one objective.
func (s *Service) Get(id string) (Objective, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.objs[id]
	if !ok {
		return Objective{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return st.obj, nil
}

// Statuses returns the current evaluation of every objective, oldest
// objective first.
func (s *Service) Statuses() []Status {
	s.mu.Lock()
	out := make([]Status, 0, len(s.objs))
	for _, st := range s.objs {
		out = append(out, Status{
			Objective:       st.obj,
			Breached:        st.breached,
			Severity:        st.severity,
			BurnFast:        st.burnFast,
			BurnSlow:        st.burnSlow,
			BudgetRemaining: st.budget,
			NoData:          st.noData,
			LastChange:      st.lastChange,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Objective, out[j].Objective
		if !oi.Created.Equal(oj.Created) {
			return oi.Created.Before(oj.Created)
		}
		return oi.ID < oj.ID
	})
	return out
}

// transition captures an emit decision made under the lock, delivered
// after it is released (the rules engine and audit log take their own
// locks).
type transition struct {
	obj      Objective
	event    string // "burn" | "recovered"
	severity string
	burnFast float64
	burnSlow float64
	budget   float64
}

// Evaluate runs one tick: read cumulative counts for every objective,
// advance the rings, recompute burn rates, publish gauges, and emit
// breach transitions. Deterministic in the tick sequence; the clock only
// timestamps transitions.
func (s *Service) Evaluate(ctx context.Context) {
	now := s.cfg.Clock.Now()
	var emits []transition

	s.mu.Lock()
	s.ticks++
	tick := s.ticks
	for _, st := range s.objs {
		good, bad, ok := s.src.Counts(st.obj)
		st.noData = !ok
		if !ok {
			continue
		}
		st.push(tick, sample{good: good, bad: bad})

		budget := 1 - st.obj.Target // error budget as a failure ratio
		burn := func(k int) float64 {
			w, span := st.window(tick, k)
			if span == 0 {
				return 0
			}
			total := w.good + w.bad
			// MinSamples is calibrated to the full window. When history
			// clamps the window to a shorter span, scale the floor by the
			// truncation factor: without this, both windows of a pair
			// collapse to the same short span just after startup and one
			// MinSamples-sized blip counterfeits a confirmed long burn.
			// A genuine outage at real traffic volume still clears the
			// scaled floor within a few ticks.
			need := s.cfg.MinSamples * int64(k) / int64(span)
			if total < need {
				return 0
			}
			return (float64(w.bad) / float64(total)) / budget
		}
		fastS, fastL := burn(s.fastShort), burn(s.fastLong)
		slowS, slowL := burn(s.slowShort), burn(s.slowLong)
		st.burnFast = min2(fastS, fastL) // pair fires on its minimum
		st.burnSlow = min2(slowS, slowL)

		wl, _ := st.window(tick, s.slowLong)
		if total := wl.good + wl.bad; total > 0 {
			st.budget = clamp01(1 - (float64(wl.bad)/float64(total))/budget)
		} else {
			st.budget = 1
		}

		fastHit := fastS >= s.cfg.FastBurn && fastL >= s.cfg.FastBurn
		slowHit := slowS >= s.cfg.SlowBurn && slowL >= s.cfg.SlowBurn
		breached := fastHit || slowHit
		if breached != st.breached {
			st.breached = breached
			st.lastChange = now
			event := "recovered"
			if breached {
				event = "burn"
				st.severity = "fast"
				if !fastHit {
					st.severity = "slow"
				}
			} else {
				st.severity = ""
			}
			emits = append(emits, transition{
				obj:      st.obj,
				event:    event,
				severity: st.severity,
				burnFast: st.burnFast,
				burnSlow: st.burnSlow,
				budget:   st.budget,
			})
		}
		s.publishGauges(st)
	}
	s.mu.Unlock()

	s.cEvaluations.Inc()
	for _, t := range emits {
		s.emit(ctx, t)
	}
}

func (s *Service) publishGauges(st *state) {
	id := st.obj.ID
	s.cfg.Obs.Gauge(obs.Name("slo_burn_rate_fast", "slo", id)).Set(st.burnFast)
	s.cfg.Obs.Gauge(obs.Name("slo_burn_rate_slow", "slo", id)).Set(st.burnSlow)
	breached := 0.0
	if st.breached {
		breached = 1
	}
	s.cfg.Obs.Gauge(obs.Name("slo_breached", "slo", id)).Set(breached)
	s.cfg.Obs.Gauge(obs.Name("slo_error_budget_remaining", "slo", id)).Set(st.budget)
}

// emit records the audit event and, for model-scoped objectives whose
// model resolves to a production instance, dispatches into the rules
// engine. Namespace-scoped breaches stay out of the engine: action rules
// execute against an instance environment, and a namespace has none.
func (s *Service) emit(ctx context.Context, t transition) {
	action := audit.ActionSLOBurn
	if t.event == "recovered" {
		s.cRecoveries.Inc()
		action = audit.ActionSLORecovered
	} else {
		s.cBurns.Inc()
	}
	if s.cfg.Audit != nil {
		_ = s.cfg.Audit.Record(audit.WithActor(ctx, evaluatorActor), audit.Event{
			Action:     action,
			EntityType: audit.EntitySLO,
			EntityID:   t.obj.ID,
			Detail: fmt.Sprintf("%s %s %s target %v severity %s burn fast %.2f slow %.2f budget %.3f",
				t.event, t.obj.Kind, t.obj.scope(), t.obj.Target, t.severity, t.burnFast, t.burnSlow, t.budget),
		})
	}
	if s.cfg.Burns != nil && t.event == "burn" {
		s.cfg.Burns.SLOBurn(ctx, t.obj, t.severity, t.burnFast, t.burnSlow, t.budget)
	}
	if s.cfg.Events == nil || t.obj.ModelID == "" || s.cfg.Instances == nil {
		return
	}
	inst, ok := s.cfg.Instances(t.obj.ModelID)
	if !ok {
		return
	}
	s.cfg.Events.SLOEvent(ctx, inst, t.event, map[string]any{
		"slo":       t.obj.ID,
		"namespace": t.obj.Namespace,
		"model":     t.obj.ModelID,
		"kind":      string(t.obj.Kind),
		"target":    t.obj.Target,
		"severity":  t.severity,
		"burn_fast": t.burnFast,
		"burn_slow": t.burnSlow,
		"budget":    t.budget,
	})
}

// Start launches the evaluation loop at the configured tick. A non-
// positive Tick in Config was already defaulted, so Start always runs;
// embedders that drive Evaluate manually simply don't call it.
func (s *Service) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Evaluate(context.Background())
			}
		}
	}()
}

// Stop halts the loop started by Start.
func (s *Service) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

func (s *Service) audit(ctx context.Context, actor, action string, o Objective, detail string) {
	if s.cfg.Audit == nil {
		return
	}
	if actor != "" {
		ctx = audit.WithActor(ctx, actor)
	}
	_ = s.cfg.Audit.Record(ctx, audit.Event{
		Action:     action,
		EntityType: audit.EntitySLO,
		EntityID:   o.ID,
		Detail:     detail,
	})
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func schema() relstore.Schema {
	return relstore.Schema{
		Table: Table,
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "namespace", Kind: relstore.KindString},
			{Name: "model_id", Kind: relstore.KindString},
			{Name: "kind", Kind: relstore.KindString},
			{Name: "target", Kind: relstore.KindFloat},
			{Name: "latency_threshold", Kind: relstore.KindFloat},
			{Name: "created", Kind: relstore.KindTime},
		},
		Key:     "id",
		Indexes: []string{"namespace"},
	}
}

func objectiveToRow(o Objective) relstore.Row {
	return relstore.Row{
		"id":                relstore.String(o.ID),
		"namespace":         relstore.String(o.Namespace),
		"model_id":          relstore.String(o.ModelID),
		"kind":              relstore.String(string(o.Kind)),
		"target":            relstore.Float(o.Target),
		"latency_threshold": relstore.Float(o.LatencyThreshold),
		"created":           relstore.Time(o.Created),
	}
}

func rowToObjective(r relstore.Row) Objective {
	return Objective{
		ID:               r["id"].Str,
		Namespace:        r["namespace"].Str,
		ModelID:          r["model_id"].Str,
		Kind:             Kind(r["kind"].Str),
		Target:           r["target"].Float,
		LatencyThreshold: r["latency_threshold"].Float,
		Created:          r["created"].Time,
	}
}
