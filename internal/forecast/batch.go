package forecast

import "sync"

// BatchForecaster is the optional vectorized prediction interface. A
// learner that implements it can answer a whole batch of one-step-ahead
// queries in one call, amortizing per-call setup (feature-buffer
// allocation, coefficient loads) across the batch — the property the
// serving gateway's micro-batching exploits. Implementations must not
// retain the contexts or the out slice.
type BatchForecaster interface {
	Model
	// ForecastBatch writes Forecast(ctxs[i]) into out[i] for every i.
	// len(out) must equal len(ctxs).
	ForecastBatch(ctxs []Context, out []float64)
}

// ForecastAll answers a batch through the fastest path the learner
// supports: ForecastBatch when implemented, a plain loop otherwise.
func ForecastAll(m Model, ctxs []Context, out []float64) {
	if bf, ok := m.(BatchForecaster); ok {
		bf.ForecastBatch(ctxs, out)
		return
	}
	for i := range ctxs {
		out[i] = m.Forecast(ctxs[i])
	}
}

// arScratch holds the per-batch reusable buffers of LinearAR prediction.
type arScratch struct {
	values []float64
	row    []float64
}

// arScratchPool recycles scratch across batches (and across batch
// executors), so even a batch of one avoids the per-call buffers.
var arScratchPool = sync.Pool{New: func() any { return new(arScratch) }}

// ForecastBatch implements BatchForecaster: the padded value buffer and
// the feature row come from a pool and are reused for every item, so a
// batch of B predictions over length-N histories does O(1) allocations
// (amortized zero) instead of O(B) buffers of N floats each.
func (m *LinearAR) ForecastBatch(ctxs []Context, out []float64) {
	sc := arScratchPool.Get().(*arScratch)
	for i := range ctxs {
		out[i] = m.forecastScratch(ctxs[i], sc)
	}
	arScratchPool.Put(sc)
}
