package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"strings"

	"gallery/internal/client"
	"gallery/internal/obs/trace"
)

// cmdTraces lists the server's sampled traces, or renders one trace's
// span tree with -id. The list reads newest first; pick a trace_id off it
// and re-run with -id to see where the time went.
func cmdTraces(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	id := fs.String("id", "", "fetch one trace by 32-hex trace id and print its span tree")
	limit := fs.Int("limit", 20, "max traces to list")
	raw := fs.Bool("json", false, "print raw JSON instead of the rendered view")
	fs.Parse(args)

	if *id != "" {
		data, err := c.DebugTrace(*id)
		if err != nil {
			return err
		}
		if *raw {
			fmt.Println(string(data))
			return nil
		}
		var d trace.Detail
		if err := json.Unmarshal(data, &d); err != nil {
			return fmt.Errorf("decode trace: %w", err)
		}
		printSummary(d.Summary)
		for _, r := range d.Roots {
			printNode(r, 0)
		}
		return nil
	}

	data, err := c.DebugTraces(*limit)
	if err != nil {
		return err
	}
	if *raw {
		fmt.Println(string(data))
		return nil
	}
	var list struct {
		Stats  trace.Stats     `json:"stats"`
		Traces []trace.Summary `json:"traces"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		return fmt.Errorf("decode trace list: %w", err)
	}
	fmt.Printf("%d traces buffered (capacity %d, %d evicted, %d pending)\n",
		list.Stats.Completed, list.Stats.Capacity, list.Stats.Evicted, list.Stats.Pending)
	for _, s := range list.Traces {
		errs := ""
		if s.Errors > 0 {
			errs = fmt.Sprintf("  errors=%d", s.Errors)
		}
		fmt.Printf("%s  %8.2fms  %2d spans  [%s]  %s%s\n",
			s.TraceID, s.Duration, s.Spans, strings.Join(s.Services, ","), s.Root, errs)
	}
	return nil
}

func printSummary(s trace.Summary) {
	fmt.Printf("trace %s: %s  %.2fms  %d spans  services=[%s]  errors=%d\n",
		s.TraceID, s.Root, s.Duration, s.Spans, strings.Join(s.Services, ","), s.Errors)
}

// printNode renders one span line, indented by depth:
//
//	serve.predict (galleryserve)  12.40ms self 0.31ms  model=... cache=miss
func printNode(n *trace.Node, depth int) {
	sp := n.Span
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(sp.Name)
	if sp.Service != "" {
		fmt.Fprintf(&b, " (%s)", sp.Service)
	}
	fmt.Fprintf(&b, "  %.2fms self %.2fms", sp.Duration, n.SelfMs)
	for _, a := range sp.Attrs {
		fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
	}
	if sp.Error != "" {
		fmt.Fprintf(&b, "  ERROR: %s", sp.Error)
	}
	fmt.Println(b.String())
	for _, c := range n.Children {
		printNode(c, depth+1)
	}
}
