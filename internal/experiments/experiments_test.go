package experiments

import (
	"strings"
	"testing"
)

// Every test here asserts that an experiment reproduces the *shape* of the
// paper's corresponding result, per DESIGN.md's per-experiment index.

func TestTable1GalleryRowAllYes(t *testing.T) {
	row, err := Table1Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Table1Features {
		if !row.Features[f] {
			t.Errorf("feature %s probe failed — paper Table 1 reports Y for Gallery", f)
		}
	}
	if !row.Measured {
		t.Error("gallery row must be marked measured")
	}
}

func TestTable1ReportedRowsComplete(t *testing.T) {
	rows := Table1Reported()
	if len(rows) != 9 {
		t.Fatalf("paper Table 1 compares 9 other systems, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Features) != len(Table1Features) {
			t.Errorf("%s row has %d features", r.System, len(r.Features))
		}
	}
	// Spot-check two cells against the paper.
	for _, r := range rows {
		switch r.System {
		case "MLFlow":
			if r.Features["Orchestration"] {
				t.Error("paper reports MLFlow without orchestration")
			}
		case "ModelDB":
			if r.Features["Searching"] {
				t.Error("paper reports ModelDB without searching")
			}
		}
	}
}

func TestTable1Format(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Gallery (this repo)") || !strings.Contains(out, "Orchestration") {
		t.Fatalf("format output missing expected content:\n%s", out)
	}
}

// TestLifecycleEndToEnd is Experiment E2: every Figure 1 stage completes,
// and the drift loop (E11) shows degradation then recovery.
func TestLifecycleEndToEnd(t *testing.T) {
	res, err := Lifecycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExploredModels != 3 {
		t.Errorf("explored %d models", res.ExploredModels)
	}
	if res.ChampionName != "linear_ar24" {
		t.Errorf("champion = %q; the AR model should beat heuristic and seasonal-naive", res.ChampionName)
	}
	if len(res.Stages) < 7 {
		t.Errorf("lifecycle covered %d stages", len(res.Stages))
	}
	if !res.RetrainTriggered || !res.OldDeprecated {
		t.Errorf("retrain=%v deprecated=%v", res.RetrainTriggered, res.OldDeprecated)
	}
	// E11 shape: drift degrades MAPE by far more than the 25% threshold,
	// and retraining recovers to near pre-shift levels.
	if res.DriftedMAPE < 2*res.PreShiftMAPE {
		t.Errorf("drift too weak: %.2f -> %.2f", res.PreShiftMAPE, res.DriftedMAPE)
	}
	if res.RecoveredMAPE > 2*res.PreShiftMAPE {
		t.Errorf("retrain did not recover: %.2f (pre-shift %.2f)", res.RecoveredMAPE, res.PreShiftMAPE)
	}
	if !res.Drift.Drifted {
		t.Error("drift detector did not fire")
	}
}

// TestLineageFigure4Shape is Experiment E4.
func TestLineageFigure4Shape(t *testing.T) {
	res, err := LineageFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bases["demand_conversion"]) != 1 {
		t.Errorf("demand_conversion lineage = %d", len(res.Bases["demand_conversion"]))
	}
	sc := res.Bases["supply_cancellation"]
	if len(sc) != 4 {
		t.Fatalf("supply_cancellation lineage = %d, want 4 (paper Fig. 4)", len(sc))
	}
	seen := map[string]bool{}
	for i := 1; i < len(sc); i++ {
		if sc[i].Created.Before(sc[i-1].Created) {
			t.Error("lineage out of time order")
		}
	}
	for _, in := range sc {
		id := in.ID.String()
		if seen[id] {
			t.Error("duplicate UUID in lineage")
		}
		seen[id] = true
	}
}

// TestDependencyFiguresShape is Experiment E5: the exact version
// progression of Figures 5–7.
func TestDependencyFiguresShape(t *testing.T) {
	steps, err := DependencyFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("%d steps", len(steps))
	}
	want := map[string][3][2]string{ // model -> per-step {latest, production}
		"A": {{"4.0", "4.0"}, {"4.1", "4.0"}, {"4.2", "4.2"}},
		"B": {{"2.0", "2.0"}, {"2.1", "2.1"}, {"2.1", "2.1"}},
		"C": {{"3.0", "3.0"}, {"3.0", "3.0"}, {"3.0", "3.0"}},
		"X": {{"7.0", "7.0"}, {"7.1", "7.0"}, {"7.2", "7.0"}},
		"Y": {{"8.0", "8.0"}, {"8.1", "8.0"}, {"8.2", "8.0"}},
	}
	for si, step := range steps {
		for _, snap := range step.Snapshots {
			exp, ok := want[snap.Model]
			if !ok {
				continue // D appears only in step 3
			}
			if snap.Latest != exp[si][0] || snap.Production != exp[si][1] {
				t.Errorf("step %d model %s: latest=%s production=%s, want %s/%s",
					si, snap.Model, snap.Latest, snap.Production, exp[si][0], exp[si][1])
			}
		}
	}
}

// TestRuleEngineFigure8Shape is Experiment E6.
func TestRuleEngineFigure8Shape(t *testing.T) {
	res, err := RuleEngineFigure8()
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectedFirst {
		t.Error("out-of-threshold metric triggered deployment")
	}
	if len(res.Deployments) != 1 {
		t.Errorf("deployments = %d", len(res.Deployments))
	}
	if res.EngineStats.SelectionRequests != 1 {
		t.Errorf("stats = %+v", res.EngineStats)
	}
}

// TestScaleShape is Experiment E7 at test-friendly tiers: throughput must
// not collapse and indexed search must stay far below full-scan cost.
func TestScaleShape(t *testing.T) {
	rs, err := Scale([]int{2000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d tiers", len(rs))
	}
	for _, r := range rs {
		if r.SearchResults == 0 || r.LineageLen == 0 {
			t.Errorf("tier %d found nothing: %+v", r.Instances, r)
		}
		if r.SaveThroughput < 100 {
			t.Errorf("tier %d save throughput %.0f inst/s", r.Instances, r.SaveThroughput)
		}
	}
	// 4x the data must not cost anywhere near 4x the per-instance time
	// (sub-linear indexed access): allow generous CI noise.
	if rs[1].SaveThroughput < rs[0].SaveThroughput/4 {
		t.Errorf("save throughput collapsed: %.0f -> %.0f", rs[0].SaveThroughput, rs[1].SaveThroughput)
	}
}

// TestDynamicSwitchingShape is Experiment E8: switching must beat the
// static model by more than 10% MAPE overall, the paper's headline.
func TestDynamicSwitchingShape(t *testing.T) {
	res, err := DynamicSwitching(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.OverallImprovement(); got <= 10 {
		t.Errorf("overall improvement %.1f%%, paper reports >10%%", got)
	}
	for _, c := range res.Cities {
		if c.StaticMAPE <= 0 || c.SwitchedMAPE <= 0 {
			t.Errorf("degenerate MAPE for %s: %+v", c.City, c)
		}
	}
}

// TestDeploymentAutomation is Experiments E9/E14.
func TestDeploymentAutomation(t *testing.T) {
	res, err := DeploymentCost(100)
	if err != nil {
		t.Fatal(err)
	}
	// E14: ~100 models cost 1-2 hours/day manually.
	hours := res.ManualMinutesDay / 60
	if hours < 1 || hours > 2 {
		t.Errorf("manual arm %.1f hours/day, paper reports 1-2", hours)
	}
	// E9: automation leaves zero recurring human work.
	if res.AutomatedMinutesDay != 0 {
		t.Errorf("automated arm still costs %.1f minutes/day", res.AutomatedMinutesDay)
	}
	if res.Deployed != 90 { // 10% fail the quality gate by construction
		t.Errorf("rule engine deployed %d of 100", res.Deployed)
	}
	if res.EngineActions != int64(res.Deployed) {
		t.Errorf("engine actions %d != deploys %d", res.EngineActions, res.Deployed)
	}
}

// TestSimulationSavingsShape is Experiment E10.
func TestSimulationSavingsShape(t *testing.T) {
	res, err := SimulationSavings()
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated shape: ~1 CPU-hour and ~8 GiB saved per simulation.
	if h := res.CPUSavedSeconds() / 3600; h < 0.5 || h > 2 {
		t.Errorf("CPU saved %.2f hours, want ~1", h)
	}
	if g := float64(res.MemorySavedBytes()) / (1 << 30); g < 4 || g > 16 {
		t.Errorf("memory saved %.2f GiB, want ~8", g)
	}
	// The world must behave the same in both modes.
	ratio := float64(res.Served.CompletedTrips) / float64(res.InSim.CompletedTrips)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("modes diverged: %d vs %d trips", res.InSim.CompletedTrips, res.Served.CompletedTrips)
	}
}

// TestProductionSkew is Experiment E12.
func TestProductionSkew(t *testing.T) {
	res, err := SkewDetection()
	if err != nil {
		t.Fatal(err)
	}
	if res.Healthy.Skewed {
		t.Error("healthy deployment flagged as skewed")
	}
	if !res.Buggy.Skewed {
		t.Errorf("buggy deployment not flagged: gap %.2f", res.Buggy.Gap)
	}
	if res.BuggyMAPE < 2*res.ValidationMAPE {
		t.Errorf("injected bug too weak: %.2f vs validation %.2f", res.BuggyMAPE, res.ValidationMAPE)
	}
}

// TestWriteOrderingCrashConsistency is Experiment E13.
func TestWriteOrderingCrashConsistency(t *testing.T) {
	res, err := WriteOrdering(2000, 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	bf := res.BlobFirst
	if bf.DanglingMetadata != 0 {
		t.Errorf("blob-first produced %d dangling metadata rows — §3.5 invariant violated", bf.DanglingMetadata)
	}
	if bf.ServingFailures != 0 {
		t.Errorf("blob-first: %d committed instances unreadable", bf.ServingFailures)
	}
	if bf.OrphanedBlobs == 0 || bf.OrphansCollected != bf.OrphanedBlobs {
		t.Errorf("orphan accounting: %d orphans, %d collected", bf.OrphanedBlobs, bf.OrphansCollected)
	}
	mf := res.MetadataFirst
	if mf.DanglingMetadata == 0 {
		t.Error("metadata-first ablation produced no dangling metadata; injection broken")
	}
}

// TestModelClassChampionship is Experiment E16 (extension): no single
// model class wins every city, validating per-city champion selection.
func TestModelClassChampionship(t *testing.T) {
	res, err := ModelClassChampionship()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cities) != 6 {
		t.Fatalf("%d cities", len(res.Cities))
	}
	if res.DistinctChampions < 2 {
		t.Errorf("one class won everywhere; the paper's per-city premise did not reproduce")
	}
	for _, c := range res.Cities {
		best := c.Champion
		for name, mape := range c.MAPEByClass {
			if mape < c.MAPEByClass[best]-1e-9 {
				t.Errorf("%s: rule picked %s (%.2f) but %s has %.2f",
					c.City, best, c.MAPEByClass[best], name, mape)
			}
		}
	}
}

// TestDriverRepositioning is Experiment E17 (extension): forecast-driven
// repositioning must materially cut waits and pickup distances, and the
// calendar-aware model must not lose to the lagging heuristic.
func TestDriverRepositioning(t *testing.T) {
	res, err := DriverRepositioning(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("%d arms", len(res.Arms))
	}
	none, heur, ar := res.Arms[0], res.Arms[1], res.Arms[2]
	if heur.MeanWaitSec >= none.MeanWaitSec/2 {
		t.Errorf("repositioning did not halve waits: %.1f vs %.1f", heur.MeanWaitSec, none.MeanWaitSec)
	}
	if ar.MeanPickupKm >= none.MeanPickupKm {
		t.Errorf("AR repositioning did not cut pickup distance: %.2f vs %.2f",
			ar.MeanPickupKm, none.MeanPickupKm)
	}
	if ar.MeanWaitSec > heur.MeanWaitSec*1.15 {
		t.Errorf("calendar-aware model lost to lagging heuristic: %.1f vs %.1f",
			ar.MeanWaitSec, heur.MeanWaitSec)
	}
	if none.Repositions != 0 || heur.Repositions == 0 {
		t.Errorf("reposition counts: none=%v heur=%v", none.Repositions, heur.Repositions)
	}
}

// TestTieredOnboarding is Experiment E15.
func TestTieredOnboarding(t *testing.T) {
	rs, err := TieredOnboarding()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d tiers", len(rs))
	}
	for _, r := range rs {
		if !r.OK {
			t.Errorf("tier %d (%s) failed: %s", r.Tier, r.Name, r.Err)
		}
	}
}

// TestOnlineDrift is Experiment E19: the continuous health pipeline must
// stay quiet through steady traffic, flip to degraded after the regime
// shift, and fire the retrain rule exactly once per episode.
func TestOnlineDrift(t *testing.T) {
	res, err := OnlineDrift(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 8 {
		t.Fatalf("%d windows", len(res.Windows))
	}
	for _, w := range res.Windows {
		if !w.Shifted && w.Status == "degraded" {
			t.Errorf("window %d degraded before the shift (psi=%.3f)", w.Index, w.PSI)
		}
	}
	if res.DegradedAt == 0 || res.DegradedAt <= 4 {
		t.Fatalf("degraded at window %d, want a post-shift window", res.DegradedAt)
	}
	if res.RetrainFired != 1 {
		t.Fatalf("retrain fired %d times, want 1", res.RetrainFired)
	}
	if res.FinalPSI < 0.25 {
		t.Errorf("final psi = %.3f, want >= 0.25", res.FinalPSI)
	}
	if !strings.Contains(res.Format(), "degraded") {
		t.Error("Format() missing verdict")
	}
}

func TestAuditChurnBounded(t *testing.T) {
	res, err := AuditChurn(200, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bounded() {
		t.Fatalf("trail unbounded: peak %d for keep=%d", res.PeakLen, res.Keep)
	}
	if res.Pruned == 0 {
		t.Fatal("retention never pruned")
	}
	if res.Recorded < 200 {
		t.Fatalf("recorded only %d events over 200 rounds", res.Recorded)
	}
	if res.FinalLen > res.PeakLen {
		t.Fatalf("final %d > peak %d", res.FinalLen, res.PeakLen)
	}
	if !strings.Contains(res.Format(), "bounded=true") {
		t.Error("Format() missing verdict")
	}
}

func TestRelQueryPlannerPaths(t *testing.T) {
	res, err := RelQuery(20000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 5 {
		t.Fatalf("%d cases", len(res.Cases))
	}
	stream := res.Case("newest_after_cutoff_desc")
	if stream == nil || stream.Rows != 50 {
		t.Fatalf("newest_after_cutoff_desc = %+v", stream)
	}
	if !stream.Ordered {
		t.Errorf("OrderBy shares the driving index column but planner sorted (Ordered=false)")
	}
	if asc := res.Case("after_cutoff_asc_paged"); asc == nil || !asc.Ordered || asc.Rows != 50 {
		t.Errorf("after_cutoff_asc_paged = %+v, want ordered with 50 rows", asc)
	}
	if gt := res.Case("gt_over_dup_run"); gt == nil || gt.Scanned > 1000 {
		t.Errorf("OpGt scanned %d postings; seek should skip the %d-row equal run", gt.Scanned, res.DupRun)
	}
	if !strings.Contains(res.Format(), "ordered") {
		t.Error("Format() missing planner columns")
	}
	if len(res.BenchMetrics()) == 0 {
		t.Error("no bench metrics emitted")
	}
}

func TestSloburnDetectionAndIsolation(t *testing.T) {
	res, err := Sloburn(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectTicks <= 0 || res.DetectTicks > 15 {
		t.Fatalf("detected in %d ticks, want a prompt fast-window trip", res.DetectTicks)
	}
	if res.BreachSeverity != "fast" {
		t.Fatalf("severity = %q, want fast (sharp outage must trip the fast pair first)", res.BreachSeverity)
	}
	if res.RuleFired == 0 {
		t.Fatal("model burn event never fired the page rule")
	}
	if res.QuietBreached || res.QuietBudget != 1 {
		t.Fatalf("quiet tenant damaged: budget %.3f breached=%v", res.QuietBudget, res.QuietBreached)
	}
	if res.RecoveryTicks <= 0 {
		t.Fatal("breach never cleared after the fault was removed")
	}
	if extra := res.REDExtraAllocs(); extra > 0.5 {
		t.Fatalf("auth+RED cost %.1f allocs/op on the predict path, want 0", extra)
	}
	if !strings.Contains(res.Format(), "breached after") {
		t.Error("Format() missing detection verdict")
	}
}

func TestIncidentCaptureDebounceAndDurability(t *testing.T) {
	res, err := IncidentCapture(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurnEvents < 5 {
		t.Fatalf("burn events = %d, want >= 5", res.BurnEvents)
	}
	if res.Captures != 1 || res.Suppressed != int64(res.BurnEvents-1) {
		t.Fatalf("debounce: captures=%d suppressed=%d for %d events, want 1/%d",
			res.Captures, res.Suppressed, res.BurnEvents, res.BurnEvents-1)
	}
	if res.BundlePartial {
		t.Fatal("bundle marked partial with a live gateway")
	}
	if !res.RestartOK {
		t.Fatal("bundle did not survive the store reopen")
	}
	if extra := res.RecorderExtraAllocs(); extra > 0.5 {
		t.Fatalf("armed recorder cost %.1f allocs/op on the predict path, want 0", extra)
	}
	if !strings.Contains(res.Format(), "suppressed") {
		t.Error("Format() missing debounce verdict")
	}
}

func TestProfileRegressionClosedLoop(t *testing.T) {
	res, err := ProfileRegression(300)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.HogFunction, "profileregHogEncode") {
		t.Fatalf("detector named %q, want the injected hog", res.HogFunction)
	}
	if res.HogFactor <= 3 {
		t.Fatalf("hog factor %.1f did not clear the rule threshold", res.HogFactor)
	}
	if res.Bundles != 1 {
		t.Fatalf("bundles = %d, want exactly 1 (debounce)", res.Bundles)
	}
	if res.BundleProfiles == 0 {
		t.Fatal("bundle carried no profiler history")
	}
	if res.FleetProcesses != 2 {
		t.Fatalf("fleet view covers %d processes, want 2", res.FleetProcesses)
	}
	if extra := res.ProfilerExtraAllocs(); extra > 0.5 {
		t.Fatalf("armed profiler cost %.1f allocs/op on the predict path, want 0", extra)
	}
	if !strings.Contains(res.Format(), "self-overhead") {
		t.Error("Format() missing the overhead row")
	}
}
