package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// doRaw issues a request against the harness server and returns the status.
func (h *harness) doRaw(t *testing.T, method, path string, body string) int {
	t.Helper()
	req, err := http.NewRequest(method, h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestMiddlewareRecordsRoutesAndStatusClasses drives one request per
// status class and asserts the middleware labels them with the matched
// ServeMux pattern and the status class, and times each route.
func TestMiddlewareRecordsRoutesAndStatusClasses(t *testing.T) {
	h := newHarness(t)

	if code := h.doRaw(t, "GET", "/v1/stats", ""); code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	if code := h.doRaw(t, "GET", "/v1/models/not-a-uuid", ""); code != http.StatusBadRequest {
		t.Fatalf("GET /v1/models/not-a-uuid = %d, want 400", code)
	}
	// Selecting through an unknown rule surfaces an unmapped engine error,
	// the canonical 500 path.
	if code := h.doRaw(t, "POST", "/v1/rules/nope/select", `{"filter":{}}`); code != http.StatusInternalServerError {
		t.Fatalf("POST /v1/rules/nope/select = %d, want 500", code)
	}
	if code := h.doRaw(t, "GET", "/v1/nosuch", ""); code != http.StatusNotFound {
		t.Fatalf("GET /v1/nosuch = %d, want 404", code)
	}

	snap := h.srv.obs.Snapshot()
	wantCounters := []string{
		`http_requests_total{route="GET /v1/stats",status="2xx"}`,
		`http_requests_total{route="GET /v1/models/{id}",status="4xx"}`,
		`http_requests_total{route="POST /v1/rules/{id}/select",status="5xx"}`,
		`http_requests_total{route="unmatched",status="4xx"}`,
	}
	for _, name := range wantCounters {
		if snap.Counters[name] != 1 {
			t.Errorf("counter %s = %d, want 1 (have: %v)", name, snap.Counters[name], snap.Counters)
		}
	}
	for _, name := range []string{
		`http_request_seconds{route="GET /v1/stats"}`,
		`http_request_seconds{route="GET /v1/models/{id}"}`,
	} {
		hs, ok := snap.Histograms[name]
		if !ok || hs.Count != 1 {
			t.Errorf("histogram %s = %+v, want count 1", name, hs)
		}
	}
	// The request carried a body, so its size must be recorded.
	if hs := snap.Histograms[`http_request_bytes{route="POST /v1/rules/{id}/select"}`]; hs.Count != 1 {
		t.Errorf("request-size histogram = %+v, want count 1", hs)
	}
	// Aggregate latency covers all four requests.
	if hs := snap.Histograms["http_request_seconds_all"]; hs.Count != 4 {
		t.Errorf("http_request_seconds_all count = %d, want 4", hs.Count)
	}
}

func TestAccessLogLines(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(21), Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	srv := NewWith(reg, nil, nil, Options{Obs: obs.NewRegistry(), AccessLog: &buf})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not one JSON object per line: %v\n%s", err, line)
	}
	if entry["method"] != "GET" || entry["route"] != "GET /v1/stats" {
		t.Fatalf("access log entry = %v", entry)
	}
	if entry["status"] != float64(http.StatusOK) {
		t.Fatalf("access log status = %v, want 200", entry["status"])
	}
	if _, ok := entry["dur_ms"]; !ok {
		t.Fatal("access log entry missing dur_ms")
	}
}

// TestBodyLimitReturns413 covers the error-mapping fix: an over-limit
// body must map http.MaxBytesError to 413, not 400.
func TestBodyLimitReturns413(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(22), Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, nil, nil, Options{Obs: obs.NewRegistry(), MaxBodyBytes: 64})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	big := `{"base_version_id":"` + strings.Repeat("x", 128) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/models", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}

	// The same limit guards the metrics-blob raw reader.
	resp, err = ts.Client().Post(ts.URL+"/v1/instances/4365754a-92bb-4421-a1be-00d7d87f77a0/metricsblob?scope=validation",
		"text/plain", strings.NewReader(strings.Repeat("m:1\n", 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized metrics blob = %d, want 413", resp.StatusCode)
	}

	// Small bodies still work.
	resp, err = ts.Client().Post(ts.URL+"/v1/models", "application/json", strings.NewReader(`{"base_version_id":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small body = %d, want 201", resp.StatusCode)
	}
}

// TestEngineDispatchCounted verifies metric writes are dispatched through
// the bounded queue and counted, and that events arriving after Close are
// dropped (and counted) rather than wedging the request path.
func TestEngineDispatchCounted(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "Random Forest", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))

	if _, err := h.c.InsertMetric(in.ID, "bias", "validation", 0.02); err != nil {
		t.Fatal(err)
	}
	h.flush()
	if got := h.srv.cDispatched.Value(); got != 1 {
		t.Fatalf("dispatched = %d, want 1", got)
	}
	if got := h.srv.cDropped.Value(); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}

	h.srv.Close()
	id, _ := uuid.Parse(in.ID)
	h.srv.notifyMetricUpdated(id)
	if got := h.srv.cDropped.Value(); got != 1 {
		t.Fatalf("post-Close dropped = %d, want 1", got)
	}
}

// TestDebugMetricsEndpoint exercises the acceptance path: after traffic,
// /v1/debug/metrics returns per-route histograms and storage counters.
func TestDebugMetricsEndpoint(t *testing.T) {
	clk := clock.NewMock(t0)
	metrics := obs.NewRegistry()
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(23), Obs: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.DAL().Blobs().Instrument(metrics)
	reg.DAL().Meta().Instrument(metrics)
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	eng.Instrument(metrics)
	srv := NewWith(reg, repo, eng, Options{Obs: metrics})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, ts.Client())

	m, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-rf", Project: "example-project", Name: "Random Forest", Domain: "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.UploadInstance(api.UploadInstanceRequest{
		ModelID: m.ID, Name: "Random Forest", City: "sf", Blob: []byte("weights"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchBlob(in.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertMetric(in.ID, "mape", "validation", 7.5); err != nil {
		t.Fatal(err)
	}
	srv.Flush()

	resp, err := ts.Client().Get(ts.URL + "/v1/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	if _, ok := snap.Histograms[`http_request_seconds{route="POST /v1/instances"}`]; !ok {
		t.Errorf("missing per-route histogram; have %d histograms", len(snap.Histograms))
	}
	if snap.Counters["dal_blob_puts_total"] != 1 {
		t.Errorf("dal_blob_puts_total = %d, want 1", snap.Counters["dal_blob_puts_total"])
	}
	if snap.Counters["dal_blob_gets_total"] != 1 {
		t.Errorf("dal_blob_gets_total = %d, want 1", snap.Counters["dal_blob_gets_total"])
	}
	if got := snap.Counters[`relstore_ops_total{op="insert",table="instances"}`]; got != 1 {
		t.Errorf("relstore instance inserts = %d, want 1", got)
	}
	if _, ok := snap.Histograms[`blobstore_op_seconds{op="put"}`]; !ok {
		t.Error("missing blobstore put latency histogram")
	}
	if snap.Counters["server_engine_dispatch_total"] != 1 {
		t.Errorf("dispatch counter = %d", snap.Counters["server_engine_dispatch_total"])
	}
	if _, ok := snap.Gauges["dal_cache_hit_ratio"]; !ok {
		t.Error("missing dal_cache_hit_ratio gauge")
	}
}
