package tenant

import (
	"math"
	"sync"
	"time"
)

// bucket is a classic token bucket: `rate` tokens refill per second up to
// `burst`. rate <= 0 disables limiting entirely (the default-namespace
// and back-compat posture). It carries its own lock so the request hot
// path never contends with the Manager's control-plane mutex.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int64) *bucket {
	b := &bucket{}
	b.configure(rate, burst)
	return b
}

// configure resets the bucket to a new rate/burst, starting full. A burst
// of 0 with a positive rate defaults to max(1, rate) so "10 req/s" alone
// behaves sensibly.
func (b *bucket) configure(rate float64, burst int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate = rate
	switch {
	case rate <= 0:
		b.burst = 0
	case burst > 0:
		b.burst = float64(burst)
	default:
		b.burst = math.Max(1, rate)
	}
	b.tokens = b.burst
	b.last = time.Time{}
}

// allow consumes one token if available. When it rejects, retryAfter is
// how long until a token will exist — the Retry-After hint.
func (b *bucket) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
