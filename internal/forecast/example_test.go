package forecast_test

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/forecast"
)

// Example trains a model on synthetic city demand, backtests it, and
// serializes it to the opaque blob form Gallery stores.
func Example() {
	start := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	data := forecast.Generate(forecast.CityConfig{
		Name: "example_city", Base: 500, DailyAmp: 150, NoiseStd: 10, Seed: 1,
	}, start, time.Hour, 24*60)

	model := &forecast.LinearAR{Lags: 24}
	metrics, err := forecast.Backtest(model, data, 24*45)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := forecast.Encode(model)
	if err != nil {
		log.Fatal(err)
	}
	back, err := forecast.Decode(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backtest R2 > 0.9: %v; decoded model: %s\n", metrics.R2 > 0.9, back.Name())
	// Output: backtest R2 > 0.9: true; decoded model: linear_ar24
}
