// Package trace is Gallery's dependency-free request-tracing subsystem.
//
// PR 1 gave the system aggregate metrics; with the serving gateway the
// request path now crosses two processes (galleryserve → galleryd → DAL →
// relstore/blobstore) and an aggregate histogram cannot say *which* layer
// made a given predict request slow. This package adds the request-level
// half of lifecycle visibility: spans with trace/span IDs, parent links,
// attributes, status and durations; a sampler (always / never /
// probabilistic / errors-and-slow-always); a bounded ring buffer of
// completed traces served at GET /v1/debug/traces; and W3C-style
// `traceparent` propagation so one predict request shows up as a single
// trace spanning both processes.
//
// Design constraints, in order:
//
//  1. Zero cost when off. trace.Start on a context carrying no span
//     returns a nil *Span without allocating, and every *Span method is
//     nil-receiver safe, so instrumented layers call them unconditionally.
//  2. No dependencies beyond the standard library and internal/obs.
//  3. Layers below HTTP never hold a Tracer: they parent to whatever span
//     rides in the context. Only the HTTP middlewares (which start root
//     spans) and the daemons (which own buffers and exporters) see one.
package trace

import (
	"context"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"gallery/internal/uuid"
)

// TraceID identifies one end-to-end request across processes (16 bytes,
// rendered as 32 hex chars in traceparent).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex chars).
type SpanID [8]byte

// IsZero reports an unset trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports an unset span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ids derives fresh random identifiers from the uuid generator, reusing
// its entropy source (the paper reproduction's only randomness plumbing).
func newTraceID() TraceID {
	u := uuid.New()
	return TraceID(u)
}

func newSpanID() SpanID {
	u := uuid.New()
	var s SpanID
	copy(s[:], u[0:8])
	return s
}

// Attr is one key/value annotation on a span. Values are strings on the
// wire; numeric helpers format on write (spans are only annotated when
// sampled, so the formatting cost is off the unsampled hot path).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is the completed, immutable form of a span — the unit stored
// in the ring buffer, served over /v1/debug/traces, and shipped between
// processes by the exporter.
type SpanData struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Service  string    `json:"service,omitempty"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_ms"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// Span is one in-flight timed operation. A nil *Span is the not-sampled
// case: every method no-ops, so callers never branch on sampling.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	name    string
	start   time.Time
	// localRoot marks the first span this process opened for the trace;
	// its End is what commits the trace to the store (and exporter).
	localRoot bool
	// remoteParent marks a localRoot continuing a trace started by
	// another process (sampled traceparent came in); such traces bypass
	// the tail filter — the originator already decided to keep them.
	remoteParent bool

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// TraceIDString returns the span's trace ID in hex, or "" on a nil span —
// the form histogram exemplars and log lines carry.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// SpanIDString returns the span's own ID in hex, or "" on a nil span.
func (s *Span) SpanIDString() string {
	if s == nil {
		return ""
	}
	return s.spanID.String()
}

// Annotate attaches a string attribute. No-op on a nil span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AnnotateInt attaches an integer attribute. No-op on a nil span.
func (s *Span) AnnotateInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Annotate(key, itoa(v))
}

// AnnotateDuration attaches a duration attribute rendered as
// milliseconds. No-op on a nil span.
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.Annotate(key, ftoa(float64(d.Microseconds())/1000)+"ms")
}

// SetError records a failure on the span; the trace counts as errored for
// the errors-and-slow sampler. No-op on a nil span or nil error.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Fail(err.Error())
}

// Fail records a failure described by msg (for callers with a status code
// rather than an error value). No-op on a nil span.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = msg
	s.mu.Unlock()
}

// Rename replaces the span's name — middlewares learn the matched route
// pattern only after the handler runs. No-op on a nil span.
func (s *Span) Rename(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// End completes the span and hands it to the tracer's store. Ending twice
// is safe (second call no-ops); ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:  s.traceID.String(),
		SpanID:   s.spanID.String(),
		Name:     s.name,
		Service:  s.tracer.service,
		Start:    s.start,
		Duration: float64(end.Sub(s.start).Microseconds()) / 1000,
		Attrs:    s.attrs,
		Error:    s.err,
	}
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}
	s.mu.Unlock()
	s.tracer.finish(s, data)
}

// EndErr records err (if non-nil) and ends the span in one call — the
// shape of most instrumented returns.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.SetError(err)
	s.End()
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWith returns ctx carrying span. A nil span returns ctx unchanged
// (and costs nothing).
func ContextWith(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the span riding in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Detach returns a fresh background context carrying only ctx's span, for
// work that outlives the request (async rule dispatch): the span link
// survives, request cancellation does not.
func Detach(ctx context.Context) context.Context {
	return ContextWith(context.Background(), FromContext(ctx))
}

// Start opens a child of the span in ctx. When ctx carries no span (not
// sampled, or no tracing wired) it returns (ctx, nil) without allocating —
// this is the only call instrumented layers make, so tracing off costs a
// context lookup and a nil check.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{
		tracer:  parent.tracer,
		traceID: parent.traceID,
		spanID:  newSpanID(),
		parent:  parent.spanID,
		name:    name,
		start:   time.Now(),
	}
	return ContextWith(ctx, child), child
}

// Tracer owns sampling decisions and the completed-trace store for one
// process. The zero value is unusable; build with New.
type Tracer struct {
	service  string
	sampler  Sampler
	store    *Store
	exporter Exporter
}

// Options configures a Tracer.
type Options struct {
	// Service labels every span this process emits ("galleryd",
	// "galleryserve").
	Service string
	// Sampler decides which requests are traced (default: Never).
	Sampler Sampler
	// Capacity bounds the completed-trace ring buffer (default 256).
	Capacity int
	// Exporter, when non-nil, receives every kept trace's local spans —
	// the cross-process shipping hook. Export runs on the goroutine that
	// ended the local root span; implementations queue.
	Exporter Exporter
}

// Exporter ships a kept trace's spans somewhere else (galleryserve posts
// them to galleryd so both processes' spans land in one buffer).
type Exporter interface {
	Export(spans []SpanData)
}

// New builds a Tracer.
func New(opts Options) *Tracer {
	if opts.Sampler == nil {
		opts.Sampler = Never()
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	return &Tracer{
		service:  opts.Service,
		sampler:  opts.Sampler,
		store:    NewStore(opts.Capacity),
		exporter: opts.Exporter,
	}
}

// Store exposes the tracer's completed-trace buffer for the debug
// endpoints.
func (t *Tracer) Store() *Store { return t.store }

// Service returns the tracer's service label.
func (t *Tracer) Service() string { return t.service }

// StartRoot opens this process's root span for a request. parent is the
// incoming traceparent header value ("" when absent). The decision tree:
//
//   - sampled traceparent came in → continue that trace (forced: the
//     caller decided), parenting to the remote span;
//   - otherwise → consult the sampler for a fresh trace;
//   - not sampled → (ctx, nil), zero allocations.
func (t *Tracer) StartRoot(ctx context.Context, name, parent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if tid, sid, sampled, err := ParseTraceparent(parent); err == nil && sampled {
		s := &Span{
			tracer:       t,
			traceID:      tid,
			spanID:       newSpanID(),
			parent:       sid,
			name:         name,
			start:        time.Now(),
			localRoot:    true,
			remoteParent: true,
		}
		return ContextWith(ctx, s), s
	}
	if !t.sampler.Sample() {
		return ctx, nil
	}
	s := &Span{
		tracer:    t,
		traceID:   newTraceID(),
		spanID:    newSpanID(),
		name:      name,
		start:     time.Now(),
		localRoot: true,
	}
	return ContextWith(ctx, s), s
}

// StartLocal opens a root span for process-internal work with no inbound
// request (hot swaps, refresh sweeps), subject to the sampler.
func (t *Tracer) StartLocal(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartRoot(ctx, name, "")
}

// finish routes a completed span into the store and, when the span closes
// the local root, applies the tail decision and notifies the exporter.
func (t *Tracer) finish(s *Span, data SpanData) {
	if !s.localRoot {
		t.store.add(data)
		return
	}
	slow := time.Duration(data.Duration * float64(time.Millisecond))
	keep := s.remoteParent || t.sampler.Keep(slow, data.Error != "" || t.store.pendingHadError(data.TraceID))
	spans := t.store.complete(data, keep)
	if keep && t.exporter != nil && len(spans) > 0 {
		t.exporter.Export(spans)
	}
}

// --- traceparent ---

// ErrTraceparent reports a malformed traceparent header.
var ErrTraceparent = errors.New("trace: malformed traceparent")

// FlagSampled is the W3C trace-flags bit meaning "the caller is recording
// this trace".
const FlagSampled = 0x01

// Traceparent renders the W3C-style header for s:
// "00-<32 hex trace-id>-<16 hex span-id>-01". A nil span returns "".
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], s.traceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], s.spanID[:])
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}

// ParseTraceparent parses "00-<trace-id>-<parent-id>-<flags>". Unknown
// versions are rejected; an all-zero trace or span ID is invalid per the
// W3C spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool, error) {
	var tid TraceID
	var sid SpanID
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false, ErrTraceparent
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return tid, sid, false, ErrTraceparent
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return tid, sid, false, ErrTraceparent
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tid, sid, false, ErrTraceparent
	}
	if tid.IsZero() || sid.IsZero() {
		return tid, sid, false, ErrTraceparent
	}
	return tid, sid, flags[0]&FlagSampled != 0, nil
}

// --- tiny formatting helpers (avoid fmt on annotation paths) ---

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	// Three decimal places is plenty for millisecond annotations.
	neg := f < 0
	if neg {
		f = -f
	}
	n := int64(f*1000 + 0.5)
	whole, frac := n/1000, n%1000
	out := itoa(whole) + "." + pad3(frac)
	if neg {
		return "-" + out
	}
	return out
}

func pad3(v int64) string {
	s := itoa(v)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
